package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures one segment writer.
type Options struct {
	// Dir holds the segment set; each writer owns seg-<instance>.xseg.
	Dir string

	// Instance is the writer's stripe number.
	Instance int

	// ArenaSize is the gather buffer size (two are allocated).  Records
	// larger than an arena take a rare synchronous direct-write path.
	// Default 1 MiB.
	ArenaSize int

	// IndexHint pre-sizes the in-memory index and duplicate filter so a
	// known-length run appends without growing either (the zero-alloc
	// steady state).
	IndexHint int

	// Sync fsyncs after every arena flush (and on Close).  Durability
	// against machine loss, at the disk's commit latency per arena.
	Sync bool

	// SimDelay, when nonzero, adds a fixed service time to every arena
	// flush, modeling the seek+transfer latency of one independent
	// striped disk — the same move as the simulated Myrinet fabric in
	// internal/transport/gm: CI machines have one disk (and often one
	// core), so the striped-scaling benchmark measures the architecture
	// against a deterministic simulated device instead of whatever the
	// host page cache feels like.  Production writers leave it zero.
	SimDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.ArenaSize <= 0 {
		o.ArenaSize = 1 << 20
	}
	return o
}

// Path returns the segment file this writer owns.
func (o Options) Path() string {
	return filepath.Join(o.Dir, fmt.Sprintf("seg-%03d.xseg", o.Instance))
}

// Source yields a record's payload by gather-copy into the write arena.
// *sgl.List satisfies it, so a reassembled super-fragment chain lands in
// the arena without an intermediate flat copy.
type Source interface {
	CopyTo(off int, dst []byte) (int, error)
}

// Stats is a snapshot of one writer's counters.  Recovered and
// TruncatedBytes describe what Open found; the rest count this writer's
// own appends.
type Stats struct {
	Events         uint64 // records accepted (excluding duplicates)
	Bytes          uint64 // record bytes accepted (headers included)
	Dups           uint64 // appends refused as already stored
	Stalls         uint64 // appends refused with ErrWriterFull
	Flushes        uint64 // arena writes issued to the file
	Recovered      uint64 // records recovered by Open from an existing segment
	Truncations    uint64 // torn tails truncated by Open (0 or 1)
	TruncatedBytes uint64 // bytes the torn tail lost
}

type arena struct {
	buf  []byte
	n    int
	base int64 // file offset of buf[0]
}

// Writer appends checksummed event records to one segment file through
// two alternating arenas: appends gather into the active arena while a
// background flusher writes the full one.  All methods are safe for one
// appender goroutine plus concurrent Stats/Contains readers; Append
// itself serializes under the writer lock.
type Writer struct {
	opts Options
	f    *os.File

	mu       sync.Mutex
	cond     *sync.Cond
	arenas   [2]arena
	active   int
	inFlight int   // arena index being flushed, or -1
	off      int64 // next record's file offset
	index    []IndexEntry
	seen     eventSet
	closed   bool
	crashed  bool
	err      error // sticky I/O failure

	flushCh chan int
	doneCh  chan struct{}

	nEvents, nBytes, nDups, nStalls, nFlushes atomic.Uint64
	nRecovered, nTruncations, nTruncatedBytes atomic.Uint64
}

// Open creates or reopens the writer's segment.  Reopening an existing
// segment recovers its valid records — via the footer index when the
// segment was closed cleanly, by a checksum scan otherwise — truncates
// any torn tail, and seeds the duplicate filter so a replayed stream
// converges instead of double-writing.
func Open(opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	w := &Writer{
		opts:     opts,
		inFlight: -1,
		flushCh:  make(chan int, 1),
		doneCh:   make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	w.arenas[0].buf = make([]byte, opts.ArenaSize)
	w.arenas[1].buf = make([]byte, opts.ArenaSize)
	if opts.IndexHint > 0 {
		w.index = make([]IndexEntry, 0, opts.IndexHint)
		w.seen.presize(uint64(opts.IndexHint))
	}

	path := opts.Path()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w.f = f
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	switch size := st.Size(); {
	case size == 0:
		var hdr [headerSize]byte
		encodeHeader(hdr[:], uint32(opts.Instance))
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		w.off = headerSize
	default:
		if err := w.recover(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	w.arenas[0].base = w.off
	go w.flusher()
	return w, nil
}

// recover loads an existing segment's records and truncates the file to
// the end of the valid region (dropping a stale footer, which Close will
// rewrite, and any torn tail).
func (w *Writer) recover(size int64) error {
	var hdr [headerSize]byte
	if _, err := w.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if _, err := decodeHeader(hdr[:]); err != nil {
		return err
	}
	entries, dataEnd, ok := loadIndex(w.f, size)
	if !ok {
		var err error
		if entries, dataEnd, err = scanSegment(w.f, size); err != nil {
			return err
		}
		if torn := size - dataEnd; torn > 0 {
			w.nTruncations.Add(1)
			w.nTruncatedBytes.Add(uint64(torn))
		}
	}
	if err := w.f.Truncate(dataEnd); err != nil {
		return err
	}
	w.index = append(w.index, entries...)
	for _, e := range entries {
		w.seen.set(e.Event)
	}
	w.off = dataEnd
	w.nRecovered.Add(uint64(len(entries)))
	return nil
}

// Append stores one event record with payload src[0:n].  The payload is
// gather-copied once into the active arena; full arenas rotate to the
// background flusher.  It returns ErrDuplicate for an event already
// stored (the event is safe; treat as success), ErrWriterFull when both
// arenas are busy (transient: retry after a delay), or a permanent error.
func (w *Writer) Append(event uint64, n int, src Source) error {
	if n <= 0 {
		// Empty records are indistinguishable from zeroed tail garbage
		// during recovery (crc32 of nothing is 0), so they are refused
		// outright; DAQ events always carry data.
		return fmt.Errorf("%w: empty record for event %d", ErrCorrupt, event)
	}
	w.mu.Lock()
	if err := w.usableLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	if w.seen.has(event) {
		w.nDups.Add(1)
		w.mu.Unlock()
		return ErrDuplicate
	}
	rec := recHdrSize + n
	if rec > len(w.arenas[w.active].buf) {
		return w.appendDirectLocked(event, n, src) // unlocks
	}
	a := &w.arenas[w.active]
	if a.n+rec > len(a.buf) {
		if w.inFlight >= 0 {
			w.nStalls.Add(1)
			w.mu.Unlock()
			return ErrWriterFull
		}
		w.inFlight = w.active
		w.flushCh <- w.active
		w.active = 1 - w.active
		a = &w.arenas[w.active]
		a.base = w.off
		a.n = 0
	}
	if err := w.fillLocked(a, event, n, src); err != nil {
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return nil
}

// fillLocked encodes one record at the active arena's tail and accounts
// for it.  Caller holds w.mu and has ensured the space.
func (w *Writer) fillLocked(a *arena, event uint64, n int, src Source) error {
	body := a.buf[a.n+recHdrSize : a.n+recHdrSize+n]
	m, err := src.CopyTo(0, body)
	if err != nil {
		return err
	}
	if m != n {
		return fmt.Errorf("%w: source yielded %d of %d bytes", ErrCorrupt, m, n)
	}
	crc := crc32.Checksum(body, castagnoli)
	encodeRecHdr(a.buf[a.n:], uint32(n), crc, event)
	a.n += recHdrSize + n
	w.index = append(w.index, IndexEntry{Event: event, Off: w.off, Size: uint32(n)})
	w.seen.set(event)
	w.off += int64(recHdrSize + n)
	w.nEvents.Add(1)
	w.nBytes.Add(uint64(recHdrSize + n))
	return nil
}

// appendDirectLocked handles the rare record larger than an arena: drain
// the pipeline, then write it synchronously at its offset.  Allocates;
// oversized events are expected to be exceptional.  Unlocks w.mu.
func (w *Writer) appendDirectLocked(event uint64, n int, src Source) error {
	w.drainLocked()
	if err := w.usableLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	buf := make([]byte, recHdrSize+n)
	if m, err := src.CopyTo(0, buf[recHdrSize:]); err != nil {
		w.mu.Unlock()
		return err
	} else if m != n {
		w.mu.Unlock()
		return fmt.Errorf("%w: source yielded %d of %d bytes", ErrCorrupt, m, n)
	}
	crc := crc32.Checksum(buf[recHdrSize:], castagnoli)
	encodeRecHdr(buf, uint32(n), crc, event)
	off := w.off
	if _, err := w.f.WriteAt(buf, off); err != nil {
		w.err = err
		w.mu.Unlock()
		return err
	}
	w.index = append(w.index, IndexEntry{Event: event, Off: off, Size: uint32(n)})
	w.seen.set(event)
	w.off += int64(len(buf))
	// The active arena's records now belong after this one.
	w.arenas[w.active].base = w.off
	w.nEvents.Add(1)
	w.nBytes.Add(uint64(len(buf)))
	w.nFlushes.Add(1)
	w.mu.Unlock()
	return nil
}

// usableLocked reports the writer's terminal states.
func (w *Writer) usableLocked() error {
	switch {
	case w.crashed:
		return ErrCrashed
	case w.closed:
		return ErrClosed
	case w.err != nil:
		return w.err
	default:
		return nil
	}
}

// drainLocked pushes the active arena (if nonempty) to the flusher and
// waits until no flush is in flight.  Caller holds w.mu.
func (w *Writer) drainLocked() {
	for w.inFlight >= 0 {
		w.cond.Wait()
	}
	a := &w.arenas[w.active]
	if a.n == 0 {
		return
	}
	w.inFlight = w.active
	w.flushCh <- w.active
	w.active = 1 - w.active
	w.arenas[w.active].base = w.off
	w.arenas[w.active].n = 0
	for w.inFlight >= 0 {
		w.cond.Wait()
	}
}

// flusher is the background write loop: one arena at a time, simulated
// device latency first (when configured), then the write and optional
// fsync.  Errors stick and poison subsequent appends.
func (w *Writer) flusher() {
	defer close(w.doneCh)
	for idx := range w.flushCh {
		w.mu.Lock()
		buf := w.arenas[idx].buf[:w.arenas[idx].n]
		base := w.arenas[idx].base
		w.mu.Unlock()

		if w.opts.SimDelay > 0 {
			time.Sleep(w.opts.SimDelay)
		}
		_, err := w.f.WriteAt(buf, base)
		if err == nil && w.opts.Sync {
			err = w.f.Sync()
		}

		w.mu.Lock()
		if err != nil && w.err == nil {
			w.err = err
		}
		w.arenas[idx].n = 0
		w.inFlight = -1
		w.nFlushes.Add(1)
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

// Flush forces everything appended so far onto the file (and through
// fsync when Sync is set).
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.usableLocked(); err != nil {
		return err
	}
	w.drainLocked()
	return w.err
}

// Close drains the pipeline, writes the footer index and trailer, syncs
// and closes the file.  The writer is unusable afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed || w.crashed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.drainLocked()
	w.closed = true
	err := w.err
	if err == nil {
		footer := encodeIndex(w.index, w.off)
		if _, werr := w.f.WriteAt(footer, w.off); werr != nil {
			err = werr
		} else if serr := w.f.Sync(); serr != nil {
			err = serr
		}
	}
	close(w.flushCh)
	w.mu.Unlock()
	<-w.doneCh
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash simulates killing the writer mid-stripe: flushed arenas stay (the
// OS had accepted those writes), the active arena is torn — all but its
// last few bytes hit the file, so the final record is cut mid-payload or
// mid-header — and no footer is written.  Acked-but-unflushed events die
// with it; a replay after Open restores them.  Unusable afterwards.
func (w *Writer) Crash() {
	w.mu.Lock()
	if w.closed || w.crashed {
		w.mu.Unlock()
		return
	}
	for w.inFlight >= 0 { // let the queued "OS" write finish
		w.cond.Wait()
	}
	w.crashed = true
	a := &w.arenas[w.active]
	if a.n > 0 {
		tear := a.n - 9
		if tear < 0 {
			tear = 0
		}
		w.f.WriteAt(a.buf[:tear], a.base)
	}
	close(w.flushCh)
	w.mu.Unlock()
	<-w.doneCh
	w.f.Close()
}

// Contains reports whether an event id is stored (or gathered) here.
func (w *Writer) Contains(event uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seen.has(event)
}

// Len returns the number of records stored (including recovered ones).
func (w *Writer) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.index)
}

// Options returns the configuration the writer was opened with, so a
// crashed writer can be reopened in place.
func (w *Writer) Options() Options { return w.opts }

// Stats snapshots the counters.  Safe to call concurrently with appends.
func (w *Writer) Stats() Stats {
	return Stats{
		Events:         w.nEvents.Load(),
		Bytes:          w.nBytes.Load(),
		Dups:           w.nDups.Load(),
		Stalls:         w.nStalls.Load(),
		Flushes:        w.nFlushes.Load(),
		Recovered:      w.nRecovered.Load(),
		Truncations:    w.nTruncations.Load(),
		TruncatedBytes: w.nTruncatedBytes.Load(),
	}
}
