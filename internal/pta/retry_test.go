package pta_test

import (
	"errors"
	"testing"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/transport/faults"
	"xdaq/internal/transport/loopback"
)

// retryPair builds two loopback-connected executives with an injector on
// the A side's endpoint.
func retryPair(t *testing.T, in *faults.Injector, pol *pta.RetryPolicy) (*executive.Executive, *executive.Executive) {
	t.Helper()
	fabric := loopback.NewFabric()
	mk := func(id i2o.NodeID, wrap bool) *executive.Executive {
		e := executive.New(executive.Options{
			Name: "retry", Node: id,
			RequestTimeout: 250 * time.Millisecond,
			Logf:           func(string, ...any) {},
		})
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		if wrap {
			ep.SetFaults(in)
		}
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		if pol != nil && wrap {
			agent.SetRetryPolicy(*pol)
		}
		if err := agent.Register(ep, pta.Task); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		e.SetRoute(1, loopback.DefaultName)
		e.SetRoute(2, loopback.DefaultName)
		return e
	}
	a := mk(1, true)
	b := mk(2, false)
	plugFlakyEcho(t, b)
	return a, b
}

func echoCall(t *testing.T, a *executive.Executive, target i2o.TID, b byte) error {
	t.Helper()
	m, err := a.AllocMessage(1)
	if err != nil {
		t.Fatal(err)
	}
	m.Payload[0] = b
	m.Target = target
	m.Initiator = i2o.TIDExecutive
	m.XFunction = 1
	rep, err := a.Request(m)
	if err != nil {
		return err
	}
	if len(rep.Payload) != 1 || rep.Payload[0] != b {
		t.Fatalf("wrong echo payload % x", rep.Payload)
	}
	rep.Release()
	return nil
}

func TestRetryRecoversInjectedRefusals(t *testing.T) {
	// Every send is refused twice, then passes: only a policy with at
	// least 3 attempts can get a frame through.
	in := faults.New(1).Add(faults.Rule{Op: faults.Error, Nth: 1, Limit: 2})
	a, _ := retryPair(t, in, &pta.RetryPolicy{Attempts: 3, Backoff: time.Millisecond})
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatalf("discover through faults: %v", err)
	}
	if err := echoCall(t, a, target, 7); err != nil {
		t.Fatalf("call despite retries: %v", err)
	}
	if n := a.Metrics().Counter("pta.retries").Value(); n < 2 {
		t.Fatalf("pta.retries = %d, want >= 2", n)
	}
	// The retried frames carried pool-backed payloads; nothing may leak.
	deadline := time.Now().Add(time.Second)
	for a.Allocator().Stats().InUse != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("buffers leaked across retries: %d in use", a.Allocator().Stats().InUse)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestNoRetryWithoutPolicy(t *testing.T) {
	in := faults.New(1).ErrorNth(1) // refuse every frame
	a, _ := retryPair(t, in, nil)
	_, err := a.Discover(2, "echo", 0)
	if err == nil {
		t.Fatal("discover succeeded through a transport refusing every frame")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error %v does not surface the injected refusal", err)
	}
	if n := a.Metrics().Counter("pta.retries").Value(); n != 0 {
		t.Fatalf("pta.retries = %d without a policy", n)
	}
}

func TestRetryGivesUpOnPermanentErrors(t *testing.T) {
	// Non-transient errors (unknown node on loopback) must not be retried
	// even with an aggressive policy.
	fabric := loopback.NewFabric()
	e := executive.New(executive.Options{
		Name: "perm", Node: 1,
		RequestTimeout: 100 * time.Millisecond,
		Logf:           func(string, ...any) {},
	})
	defer e.Close()
	ep, err := fabric.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := pta.New(e)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	agent.SetRetryPolicy(pta.RetryPolicy{Attempts: 5, Backoff: time.Millisecond})
	if err := agent.Register(ep, pta.Task); err != nil {
		t.Fatal(err)
	}
	e.SetRoute(9, loopback.DefaultName) // node 9 never attaches

	start := time.Now()
	err = agent.Forward(loopback.DefaultName, 9, &i2o.Message{
		Target: i2o.TID(2), Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	})
	if !errors.Is(err, loopback.ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("permanent error took %v; was it retried with backoff?", d)
	}
	if n := e.Metrics().Counter("pta.retries").Value(); n != 0 {
		t.Fatalf("pta.retries = %d for a permanent error", n)
	}
}

func TestExponentialBackoffIsBounded(t *testing.T) {
	in := faults.New(1).Add(faults.Rule{Op: faults.Error, Nth: 1, Limit: 3})
	a, _ := retryPair(t, in, &pta.RetryPolicy{
		Attempts: 4, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	start := time.Now()
	if _, err := a.Discover(2, "echo", 0); err != nil {
		t.Fatalf("discover: %v", err)
	}
	// 1 + 2 + 2 ms of backoff, plus scheduling slack; an uncapped policy
	// would be 1 + 2 + 4.  The assertion only guards against runaway
	// backoff (seconds), not exact timing.
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("bounded backoff took %v", d)
	}
}
