package pta

import (
	"errors"
	"testing"
	"time"

	"xdaq/internal/i2o"
)

// fakeClock is a hand-advanced time source for the token buckets.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

func TestQoSAdmitTokenBucket(t *testing.T) {
	_, a := newAgent(t)
	clk := newFakeClock()
	a.qosNow = clk.now
	if err := a.SetQoS([]QoSClass{{Name: "bulk", Priority: i2o.PriorityBulk, Rate: 2, Burst: 2}}); err != nil {
		t.Fatal(err)
	}
	// The bucket opens full (= burst).
	for i := 0; i < 2; i++ {
		if err := a.qosAdmit(i2o.PriorityBulk); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err := a.qosAdmit(i2o.PriorityBulk)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("exhausted budget admitted: %v", err)
	}
	if errors.Is(err, ErrTransient) {
		t.Fatal("reject-class refusal must not be transient (it would be retried)")
	}
	// Half a second at 2/s refills one token, not two.
	clk.advance(500 * time.Millisecond)
	if err := a.qosAdmit(i2o.PriorityBulk); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := a.qosAdmit(i2o.PriorityBulk); !errors.Is(err, ErrAdmission) {
		t.Fatalf("second frame after half-token refill: %v", err)
	}
	// A long idle period caps at burst, never beyond.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if err := a.qosAdmit(i2o.PriorityBulk); err != nil {
			t.Fatalf("post-idle admit %d: %v", i, err)
		}
	}
	if err := a.qosAdmit(i2o.PriorityBulk); !errors.Is(err, ErrAdmission) {
		t.Fatalf("burst cap exceeded after idle: %v", err)
	}
}

func TestQoSQueueClassIsTransient(t *testing.T) {
	_, a := newAgent(t)
	clk := newFakeClock()
	a.qosNow = clk.now
	if err := a.SetQoS([]QoSClass{{Name: "evt", Priority: i2o.PriorityHigh, Rate: 1, Burst: 1, Queue: true}}); err != nil {
		t.Fatal(err)
	}
	if err := a.qosAdmit(i2o.PriorityHigh); err != nil {
		t.Fatal(err)
	}
	err := a.qosAdmit(i2o.PriorityHigh)
	if !errors.Is(err, ErrAdmission) || !errors.Is(err, ErrTransient) {
		t.Fatalf("queue-class refusal must be both admission and transient: %v", err)
	}
}

// Ungoverned priorities and zero-rate classes pass freely; admission only
// bites the class's own level.
func TestQoSScope(t *testing.T) {
	_, a := newAgent(t)
	clk := newFakeClock()
	a.qosNow = clk.now
	if err := a.SetQoS([]QoSClass{
		{Name: "bulk", Priority: i2o.PriorityBulk, Rate: 1, Burst: 1},
		{Name: "doc", Priority: i2o.PriorityLow, Rate: 0}, // documents the mapping only
	}); err != nil {
		t.Fatal(err)
	}
	a.qosAdmit(i2o.PriorityBulk)
	if err := a.qosAdmit(i2o.PriorityBulk); !errors.Is(err, ErrAdmission) {
		t.Fatalf("governed level: %v", err)
	}
	for i := 0; i < 100; i++ {
		if err := a.qosAdmit(i2o.PriorityHigh); err != nil {
			t.Fatalf("ungoverned level refused: %v", err)
		}
		if err := a.qosAdmit(i2o.PriorityLow); err != nil {
			t.Fatalf("zero-rate class refused: %v", err)
		}
	}
	// Clearing the table turns admission off entirely.
	if err := a.SetQoS(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.qosAdmit(i2o.PriorityBulk); err != nil {
		t.Fatalf("admission off: %v", err)
	}
}

// Forward charges the bucket per attempt: a reject-class refusal
// surfaces ErrAdmission to the caller and counts as a forward error.
func TestQoSForwardRejects(t *testing.T) {
	_, a := newAgent(t)
	clk := newFakeClock()
	a.qosNow = clk.now
	pt := &fakePT{name: "pt.fake"}
	if err := a.Register(pt, Task); err != nil {
		t.Fatal(err)
	}
	if err := a.SetQoS([]QoSClass{{Name: "bulk", Priority: i2o.PriorityBulk, Rate: 1, Burst: 1}}); err != nil {
		t.Fatal(err)
	}
	send := func() error {
		return a.Forward("pt.fake", 2, &i2o.Message{
			Priority: i2o.PriorityBulk, Target: 5, Function: i2o.UtilNOP,
		})
	}
	if err := send(); err != nil {
		t.Fatal(err)
	}
	if err := send(); !errors.Is(err, ErrAdmission) {
		t.Fatalf("over-budget forward: %v", err)
	}
	if len(pt.sent) != 1 {
		t.Fatalf("transport saw %d frames, want 1", len(pt.sent))
	}
	if a.Stats().Errors != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestSetQoSValidation(t *testing.T) {
	_, a := newAgent(t)
	cases := []struct {
		name    string
		classes []QoSClass
	}{
		{"empty name", []QoSClass{{Name: "", Priority: 1, Rate: 1}}},
		{"priority out of range", []QoSClass{{Name: "x", Priority: i2o.NumPriorities, Rate: 1}}},
		{"duplicate priority", []QoSClass{
			{Name: "a", Priority: 2, Rate: 1},
			{Name: "b", Priority: 2, Rate: 1},
		}},
	}
	for _, c := range cases {
		if err := a.SetQoS(c.classes); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// A failed install must not clobber the previous table.
	if err := a.SetQoS([]QoSClass{{Name: "keep", Priority: 3, Rate: 5}}); err != nil {
		t.Fatal(err)
	}
	a.SetQoS([]QoSClass{{Name: "", Priority: 1, Rate: 1}})
	if got := a.QoS(); len(got) != 1 || got[0].Name != "keep" {
		t.Fatalf("previous table lost: %v", got)
	}
}

// applyQoSParams is the autopilot's actuation path: "qos.<class>" writes
// install, update and remove classes; malformed writes are skipped
// without disturbing the installed set.
func TestApplyQoSParams(t *testing.T) {
	_, a := newAgent(t)
	a.applyQoSParams([]i2o.Param{
		{Key: "qos.bulk", Value: "6 100 200 true"},
		{Key: "qos.control", Value: "0 50"},
	})
	got := a.QoS()
	if len(got) != 2 {
		t.Fatalf("classes %v", got)
	}
	if got[0].Name != "control" || got[0].Priority != 0 || got[0].Rate != 50 {
		t.Fatalf("control class %+v", got[0])
	}
	if got[1].Name != "bulk" || got[1].Priority != 6 || got[1].Rate != 100 ||
		got[1].Burst != 200 || !got[1].Queue {
		t.Fatalf("bulk class %+v", got[1])
	}

	// Update one, remove the other, skip garbage — atomically.
	a.applyQoSParams([]i2o.Param{
		{Key: "qos.bulk", Value: "6 250"},
		{Key: "qos.control", Value: "off"},
		{Key: "qos.bad", Value: "9 nope"},
		{Key: "qos.worse", Value: int64(7)},
		{Key: "unrelated", Value: "ignored"},
	})
	got = a.QoS()
	if len(got) != 1 || got[0].Name != "bulk" || got[0].Rate != 250 {
		t.Fatalf("after update %v", got)
	}
}

func TestParseQoSValue(t *testing.T) {
	good := []struct {
		val  string
		want QoSClass
	}{
		{"3 100", QoSClass{Name: "c", Priority: 3, Rate: 100}},
		{"3 100 64", QoSClass{Name: "c", Priority: 3, Rate: 100, Burst: 64}},
		{"3 100 64 true", QoSClass{Name: "c", Priority: 3, Rate: 100, Burst: 64, Queue: true}},
		{"0 -1", QoSClass{Name: "c", Priority: 0, Rate: -1}},
	}
	for _, g := range good {
		c, err := parseQoSValue("c", g.val)
		if err != nil {
			t.Errorf("%q: %v", g.val, err)
			continue
		}
		if c != g.want {
			t.Errorf("%q: %+v, want %+v", g.val, c, g.want)
		}
	}
	for _, bad := range []string{"", "3", "9 100", "x 100", "3 x", "3 100 x", "3 100 64 maybe", "3 100 64 true extra"} {
		if _, err := parseQoSValue("c", bad); err == nil {
			t.Errorf("%q: accepted", bad)
		}
	}
}
