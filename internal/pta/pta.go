// Package pta implements the Peer Transport Agent: the module that owns
// all Peer Transports and moves frames between the executive and remote
// IOPs (figure 4 of the paper).
//
// Peer Transports "encapsulate all details about a specific transport
// layer" and are themselves ordinary device modules: registering one plugs
// a device into the executive, so every PT has a TiD and answers the
// standard executive and utility messages.  The agent distinguishes the
// paper's two modes of operation (§4):
//
//   - Polling: the agent's polling goroutine periodically scans all
//     registered polling-mode PTs for pending data.  Efficient for
//     lightweight user-level network interfaces — but one slow PT in the
//     polling set degrades all of them, which BenchmarkPollingVsTask
//     reproduces.
//   - Task: the PT has its own thread of control and reports to the
//     executive whenever data have arrived.
//
// Multiple transports can be registered and used in parallel; each device
// route names the PT that carries it.
package pta

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/queue"
	"xdaq/internal/transport/faults"
)

// Mode selects how received frames reach the executive.
type Mode int

const (
	// Task mode: the transport delivers from its own goroutine.
	Task Mode = iota

	// Polling mode: the agent's scan loop asks the transport for pending
	// frames.
	Polling
)

func (m Mode) String() string {
	if m == Polling {
		return "polling"
	}
	return "task"
}

// Deliver hands a received frame (with the sending IOP's identity) to the
// local messaging instance.  Ownership of the frame passes to the callee.
type Deliver func(src i2o.NodeID, m *i2o.Message) error

// Tunable is an optional PeerTransport extension: transports with runtime
// knobs (the TCP eager/rendezvous threshold, say) implement it, and
// integer parameter writes on the transport's device are forwarded to
// SetTunable — the remote-actuation path the control-plane autopilot
// uses.  Unknown keys return an error, which the agent logs and drops (a
// reconfiguration frame must not wedge the route).
type Tunable interface {
	SetTunable(key string, value int64) error
}

// PeerTransport is the contract every transport implements.
type PeerTransport interface {
	// Name is the route identifier, e.g. "pt.gm" or "pt.tcp".
	Name() string

	// Send transmits a frame to the given IOP.  Ownership of the frame
	// passes to the transport: it releases any attached buffer once the
	// frame is on the wire (or delivered, for pointer-passing transports).
	Send(dst i2o.NodeID, m *i2o.Message) error

	// Start switches the transport into task mode, delivering through fn
	// until Stop.  Transports that cannot run a task loop return an error.
	Start(fn Deliver) error

	// Poll delivers at most budget pending frames through fn and reports
	// how many it delivered.  Transports that cannot poll return 0.
	Poll(fn Deliver, budget int) int

	// Stop terminates delivery and releases transport resources.
	Stop() error
}

// Errors.
var (
	// ErrUnknownRoute reports a forward over an unregistered route.
	ErrUnknownRoute = errors.New("pta: unknown route")

	// ErrSuspended reports a forward over a suspended transport.
	ErrSuspended = errors.New("pta: transport suspended")

	// ErrDuplicate reports a second registration of a route name.
	ErrDuplicate = errors.New("pta: route already registered")

	// ErrTransient marks transport errors worth retrying: the fabric
	// hiccuped but the route is believed alive (a refused write on a live
	// connection, a failed dial to a restarting peer).  Transports wrap
	// such errors; everything else fails the forward on the first attempt.
	ErrTransient = errors.New("pta: transient transport error")
)

// RetryPolicy bounds re-sends of frames whose transport send failed with a
// transient error.  The zero value (and any Attempts <= 1) disables
// retrying, preserving fail-fast forwarding.
type RetryPolicy struct {
	// Attempts is the total number of sends, including the first.
	Attempts int

	// Backoff is the sleep before the first retry; it doubles per attempt.
	// Zero defaults to 1ms.
	Backoff time.Duration

	// MaxBackoff caps the doubling; 0 leaves it uncapped.
	MaxBackoff time.Duration
}

type slot struct {
	pt        PeerTransport
	mode      Mode
	dev       *device.Device
	suspended atomic.Bool

	// deliver is the route's delivery callback, built once at Register
	// time: the poll scan and task starts share it instead of closing over
	// the route per call (the scan runs per frame batch, so a per-call
	// closure was measurable garbage).
	deliver Deliver

	// Per-route traffic counters (pta.<route>.sent etc.), created at
	// Register time from the executive's registry.
	cSent      *metrics.Counter
	cRecv      *metrics.Counter
	cSentBytes *metrics.Counter
	cRecvBytes *metrics.Counter
}

// Agent is the Peer Transport Agent for one executive.
type Agent struct {
	exec *executive.Executive
	dev  *device.Device

	mu    sync.RWMutex
	slots map[string]*slot

	pollStop chan struct{}
	pollDone chan struct{}
	pollWake chan struct{}
	closed   atomic.Bool

	retry atomic.Pointer[RetryPolicy]

	// qos is the admission-control table (nil: admission off); qosNow
	// overrides the token-refill clock in tests.
	qos    atomic.Pointer[qosTable]
	qosNow func() time.Time

	nSent     *metrics.Counter
	nReceived *metrics.Counter
	nErrors   *metrics.Counter
	nRetries  *metrics.Counter
	pollScan  *metrics.Histogram
}

// New creates the agent, plugs its device module into the executive and
// installs it as the executive's router.
func New(e *executive.Executive) (*Agent, error) {
	reg := e.Metrics()
	a := &Agent{
		exec:     e,
		slots:    make(map[string]*slot),
		pollStop: make(chan struct{}),
		pollDone: make(chan struct{}),
		pollWake: make(chan struct{}, 1),

		nSent:     reg.Counter("pta.sent"),
		nReceived: reg.Counter("pta.recv"),
		nErrors:   reg.Counter("pta.errors"),
		nRetries:  reg.Counter("pta.retries"),
		pollScan:  reg.Histogram("pta.pollScan"),
	}
	a.dev = device.New("pta", 0)
	a.dev.Params().OnSet(a.applyQoSParams)
	if _, err := e.Plug(a.dev); err != nil {
		return nil, fmt.Errorf("pta: plug agent device: %w", err)
	}
	e.SetRouter(a)
	go a.pollLoop()
	return a, nil
}

// MustNew is New for program setup paths that cannot proceed without an
// agent; it panics on error.
func MustNew(e *executive.Executive) *Agent {
	a, err := New(e)
	if err != nil {
		panic(err)
	}
	return a
}

// Register adds a transport under its route name and plugs its device
// module.  Task-mode transports are started immediately.
func (a *Agent) Register(pt PeerTransport, mode Mode) error {
	reg := a.exec.Metrics()
	s := &slot{
		pt:   pt,
		mode: mode,

		cSent:      reg.Counter("pta." + pt.Name() + ".sent"),
		cRecv:      reg.Counter("pta." + pt.Name() + ".recv"),
		cSentBytes: reg.Counter("pta." + pt.Name() + ".sentBytes"),
		cRecvBytes: reg.Counter("pta." + pt.Name() + ".recvBytes"),
	}
	s.dev = device.New(pt.Name(), 0)
	route := pt.Name()
	s.deliver = func(src i2o.NodeID, m *i2o.Message) error {
		a.nReceived.Inc()
		s.cRecv.Inc()
		s.cRecvBytes.Add(uint64(m.WireSize()))
		return a.exec.InjectFrom(src, route, m)
	}
	s.dev.Params().Set("mode", mode.String())
	s.dev.Params().Set("suspended", false)
	s.dev.Params().OnSet(func(changed []i2o.Param) {
		for _, p := range changed {
			if p.Key == "suspended" {
				if b, ok := p.Value.(bool); ok {
					s.suspended.Store(b)
					if !b && mode == Polling {
						a.wakePoll()
					}
				}
				continue
			}
			if tn, ok := pt.(Tunable); ok {
				if v, isInt := p.Value.(int64); isInt {
					if err := tn.SetTunable(p.Key, v); err != nil {
						a.exec.Logf("pta: %s: %v", pt.Name(), err)
					}
				}
			}
		}
	})

	a.mu.Lock()
	if _, dup := a.slots[pt.Name()]; dup {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicate, pt.Name())
	}
	a.slots[pt.Name()] = s
	a.mu.Unlock()

	if _, err := a.exec.Plug(s.dev); err != nil {
		a.mu.Lock()
		delete(a.slots, pt.Name())
		a.mu.Unlock()
		return fmt.Errorf("pta: plug %s: %w", pt.Name(), err)
	}
	if mode == Task {
		if err := pt.Start(s.deliver); err != nil {
			a.mu.Lock()
			delete(a.slots, pt.Name())
			a.mu.Unlock()
			return fmt.Errorf("pta: start %s: %w", pt.Name(), err)
		}
	} else {
		a.wakePoll()
	}
	return nil
}

// SetRetryPolicy installs the forward retry policy for all routes.
func (a *Agent) SetRetryPolicy(p RetryPolicy) {
	a.retry.Store(&p)
}

// RetryPolicy returns the installed policy (zero value when none is set).
func (a *Agent) RetryPolicy() RetryPolicy {
	if p := a.retry.Load(); p != nil {
		return *p
	}
	return RetryPolicy{}
}

// retryable reports whether a failed send may be re-attempted: errors the
// transport marked transient, injector refusals (which model them), and
// send-ring backpressure (queue.ErrFull — GM send-token exhaustion, the
// TCP transport's full per-peer ring, and its exhausted per-peer credit
// window, tcp.ErrNoCredit, which wraps both sentinels): the ring drains as
// soon as the writer's next vectored write completes, and credits flow
// back as soon as the receiver recycles delivered frames, so backing off
// and re-attempting is exactly right.
func retryable(err error) bool {
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, faults.ErrInjected) ||
		errors.Is(err, queue.ErrFull)
}

// Forward implements executive.Router.
func (a *Agent) Forward(route string, dst i2o.NodeID, m *i2o.Message) error {
	a.mu.RLock()
	s := a.slots[route]
	a.mu.RUnlock()
	if s == nil {
		m.Release()
		a.nErrors.Inc()
		return fmt.Errorf("%w: %s", ErrUnknownRoute, route)
	}
	if s.suspended.Load() {
		m.Release()
		a.nErrors.Inc()
		return fmt.Errorf("%w: %s", ErrSuspended, route)
	}
	// Size the frame before Send: ownership passes to the transport.
	wire := uint64(m.WireSize())

	pol := a.RetryPolicy()
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := pol.Backoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	// Transports release the frame's pool buffer on failure as well as
	// success, so a retried attempt must hold its own reference and
	// re-attach it to the frame before resending.  A segment list must be
	// re-attached as a list: AttachBuffer would fill the buffer slot but
	// leave the list slot empty, and the frame would be resent bodiless.
	buf := m.Buffer()
	list := m.List()
	for attempt := 1; ; attempt++ {
		// QoS admission is charged per attempt, before the transport sees
		// the frame.  A queue-class refusal Is ErrTransient, so it rides
		// the same backoff as a transient send failure — that is the
		// "queue" in reject-or-queue; a reject-class refusal fails here
		// on the first attempt.
		if err := a.qosAdmit(m.Priority); err != nil {
			if attempt >= attempts || !retryable(err) {
				m.Release()
				a.nErrors.Inc()
				return err
			}
			a.nRetries.Inc()
			time.Sleep(backoff)
			backoff *= 2
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
			continue
		}
		guarded := attempts > 1 && buf != nil
		if guarded {
			buf.Retain()
		}
		err := s.pt.Send(dst, m)
		if err == nil {
			if guarded {
				buf.Release()
			}
			a.nSent.Inc()
			s.cSent.Inc()
			s.cSentBytes.Add(wire)
			return nil
		}
		if attempt >= attempts || !retryable(err) {
			if guarded {
				buf.Release()
			}
			a.nErrors.Inc()
			return err
		}
		a.nRetries.Inc()
		time.Sleep(backoff)
		backoff *= 2
		if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
		if list != nil {
			// Our retained reference becomes the frame's hold again.
			m.AttachList(list)
		} else if buf != nil {
			m.AttachBuffer(buf)
		}
	}
}

// Suspend pauses or resumes a transport.  Suspended polling transports are
// skipped by the scan loop — the paper's advice for protecting a
// low-latency PT from a slow one.
func (a *Agent) Suspend(route string, suspended bool) error {
	a.mu.RLock()
	s := a.slots[route]
	a.mu.RUnlock()
	if s == nil {
		return fmt.Errorf("%w: %s", ErrUnknownRoute, route)
	}
	s.suspended.Store(suspended)
	s.dev.Params().Set("suspended", suspended)
	if !suspended && s.mode == Polling {
		a.wakePoll()
	}
	return nil
}

// Routes returns the registered route names.
func (a *Agent) Routes() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.slots))
	for name := range a.slots {
		out = append(out, name)
	}
	return out
}

// Stats summarizes agent activity.
type Stats struct {
	Sent     uint64
	Received uint64
	Errors   uint64
}

// Stats returns a snapshot of the agent's counters.
func (a *Agent) Stats() Stats {
	return Stats{Sent: a.nSent.Value(), Received: a.nReceived.Value(), Errors: a.nErrors.Value()}
}

// pollBudget bounds the frames drained from one transport per scan so one
// busy PT cannot starve the others within a scan round.
const pollBudget = 64

// wakePoll nudges the scan goroutine out of its empty-set park.  Called
// when a polling transport appears or is resumed; a buffered no-op send
// keeps it cheap when the loop is already running.
func (a *Agent) wakePoll() {
	select {
	case a.pollWake <- struct{}{}:
	default:
	}
}

// pollLoop is the agent's scan goroutine for polling-mode transports.
func (a *Agent) pollLoop() {
	defer close(a.pollDone)
	var slots []*slot // reused scan scratch; the loop is its only owner
	for {
		select {
		case <-a.pollStop:
			return
		default:
		}
		slots = slots[:0]
		a.mu.RLock()
		for _, s := range a.slots {
			if s.mode == Polling && !s.suspended.Load() {
				slots = append(slots, s)
			}
		}
		a.mu.RUnlock()
		if len(slots) == 0 {
			// Nothing to scan — park until a polling transport is
			// registered or resumed.  Without this, agents whose
			// transports are all task-mode would burn a core spinning.
			select {
			case <-a.pollStop:
				return
			case <-a.pollWake:
			}
			continue
		}
		var start time.Time
		if metrics.Enabled() {
			start = time.Now()
		}
		delivered := 0
		for _, s := range slots {
			delivered += s.pt.Poll(s.deliver, pollBudget)
		}
		if delivered > 0 {
			// Only productive rounds are observed; empty spins would swamp
			// the histogram with scheduler noise.
			if !start.IsZero() {
				a.pollScan.Since(start)
			}
		} else {
			// Nothing pending anywhere: yield rather than burn the core.
			runtime.Gosched()
		}
	}
}

// Close stops the polling loop and all transports.
func (a *Agent) Close() {
	if a.closed.Swap(true) {
		return
	}
	close(a.pollStop)
	<-a.pollDone
	a.mu.Lock()
	slots := make([]*slot, 0, len(a.slots))
	for _, s := range a.slots {
		slots = append(slots, s)
	}
	a.mu.Unlock()
	for _, s := range slots {
		if err := s.pt.Stop(); err != nil {
			a.exec.Logf("pta: stop %s: %v", s.pt.Name(), err)
		}
	}
}
