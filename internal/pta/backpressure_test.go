package pta_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/queue"
)

// fullPT refuses the first `refusals` sends with a wrapped queue.ErrFull —
// the shape of a transport ring-full refusal — then accepts.
type fullPT struct {
	refusals int32
	sent     atomic.Int32
	tried    atomic.Int32
}

func (p *fullPT) Name() string { return "pt.full" }

func (p *fullPT) Send(dst i2o.NodeID, m *i2o.Message) error {
	if p.tried.Add(1) <= p.refusals {
		m.Release()
		return fmt.Errorf("full: send ring full: %w", queue.ErrFull)
	}
	m.Recycle()
	p.sent.Add(1)
	return nil
}

func (p *fullPT) Start(pta.Deliver) error   { return nil }
func (p *fullPT) Poll(pta.Deliver, int) int { return 0 }
func (p *fullPT) Stop() error               { return nil }

// TestRetryRecoversRingBackpressure checks the agent treats a ring-full
// refusal (an error wrapping queue.ErrFull) as transient: with a retry
// policy the frame is re-attempted and eventually delivered.
func TestRetryRecoversRingBackpressure(t *testing.T) {
	e := executive.New(executive.Options{
		Name: "bp", Node: 1, Logf: func(string, ...any) {},
	})
	defer e.Close()
	agent, err := pta.New(e)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	agent.SetRetryPolicy(pta.RetryPolicy{Attempts: 4, Backoff: time.Millisecond})
	tr := &fullPT{refusals: 2}
	if err := agent.Register(tr, pta.Task); err != nil {
		t.Fatal(err)
	}

	m := &i2o.Message{
		Target: 2, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	if err := agent.Forward("pt.full", 2, m); err != nil {
		t.Fatalf("forward through backpressure: %v", err)
	}
	if got := tr.tried.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (two refusals, one success)", got)
	}
	if tr.sent.Load() != 1 {
		t.Fatal("frame never delivered")
	}
}

// creditPT refuses the first `refusals` sends with an error shaped like the
// TCP transport's ErrNoCredit — wrapping both queue.ErrFull and
// pta.ErrTransient — then accepts, modelling a peer whose credit window
// refills once the receiver recycles delivered frames.
type creditPT struct {
	refusals int32
	sent     atomic.Int32
	tried    atomic.Int32
}

func (p *creditPT) Name() string { return "pt.credit" }

func (p *creditPT) Send(dst i2o.NodeID, m *i2o.Message) error {
	if p.tried.Add(1) <= p.refusals {
		m.Release()
		return fmt.Errorf("credit: peer send window exhausted: %w (%w)",
			queue.ErrFull, pta.ErrTransient)
	}
	m.Recycle()
	p.sent.Add(1)
	return nil
}

func (p *creditPT) Start(pta.Deliver) error   { return nil }
func (p *creditPT) Poll(pta.Deliver, int) int { return 0 }
func (p *creditPT) Stop() error               { return nil }

// TestRetryRecoversCreditExhaustion checks the agent treats credit-window
// exhaustion as transient backpressure: with a retry policy the frame is
// re-attempted and delivered once credits return.
func TestRetryRecoversCreditExhaustion(t *testing.T) {
	e := executive.New(executive.Options{
		Name: "cred", Node: 1, Logf: func(string, ...any) {},
	})
	defer e.Close()
	agent, err := pta.New(e)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	agent.SetRetryPolicy(pta.RetryPolicy{Attempts: 5, Backoff: time.Millisecond})
	tr := &creditPT{refusals: 3}
	if err := agent.Register(tr, pta.Task); err != nil {
		t.Fatal(err)
	}

	m := &i2o.Message{
		Target: 2, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	if err := agent.Forward("pt.credit", 2, m); err != nil {
		t.Fatalf("forward through credit exhaustion: %v", err)
	}
	if got := tr.tried.Load(); got != 4 {
		t.Fatalf("%d attempts, want 4 (three refusals, one success)", got)
	}
	if tr.sent.Load() != 1 {
		t.Fatal("frame never delivered")
	}
}

// TestBackpressureFailsWithoutPolicy checks the refusal surfaces to the
// caller, still carrying queue.ErrFull, when no retry policy is set.
func TestBackpressureFailsWithoutPolicy(t *testing.T) {
	e := executive.New(executive.Options{
		Name: "bp2", Node: 1, Logf: func(string, ...any) {},
	})
	defer e.Close()
	agent, err := pta.New(e)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	tr := &fullPT{refusals: 1 << 30}
	if err := agent.Register(tr, pta.Task); err != nil {
		t.Fatal(err)
	}
	err = agent.Forward("pt.full", 2, &i2o.Message{
		Target: 2, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	})
	if !errors.Is(err, queue.ErrFull) {
		t.Fatalf("err = %v, want to wrap queue.ErrFull", err)
	}
}
