package pta

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdaq/internal/executive"
	"xdaq/internal/i2o"
)

// fakePT is a scriptable transport.
type fakePT struct {
	name    string
	mu      sync.Mutex
	sent    []*i2o.Message
	pending []fakeFrame // frames Poll will deliver
	started atomic.Bool
	stopped atomic.Bool
	sendErr error
}

type fakeFrame struct {
	src i2o.NodeID
	m   *i2o.Message
}

func (f *fakePT) Name() string { return f.name }

func (f *fakePT) Send(dst i2o.NodeID, m *i2o.Message) error {
	if f.sendErr != nil {
		m.Release()
		return f.sendErr
	}
	f.mu.Lock()
	f.sent = append(f.sent, m)
	f.mu.Unlock()
	return nil
}

func (f *fakePT) Start(Deliver) error { f.started.Store(true); return nil }

func (f *fakePT) Poll(fn Deliver, budget int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for n < budget && len(f.pending) > 0 {
		fr := f.pending[0]
		f.pending = f.pending[1:]
		if err := fn(fr.src, fr.m); err != nil {
			return n
		}
		n++
	}
	return n
}

func (f *fakePT) Stop() error { f.stopped.Store(true); return nil }

func (f *fakePT) enqueue(src i2o.NodeID, m *i2o.Message) {
	f.mu.Lock()
	f.pending = append(f.pending, fakeFrame{src, m})
	f.mu.Unlock()
}

func newAgent(t *testing.T) (*executive.Executive, *Agent) {
	t.Helper()
	e := executive.New(executive.Options{
		Name: "pta-test", Node: 1,
		RequestTimeout: time.Second,
		Logf:           func(string, ...any) {},
	})
	a, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		e.Close()
	})
	return e, a
}

func TestAgentPlugsDeviceAndRoutes(t *testing.T) {
	e, a := newAgent(t)
	if _, err := e.Resolve("pta", 0, i2o.NodeNone); err != nil {
		t.Fatal("agent device not plugged")
	}
	pt := &fakePT{name: "pt.fake"}
	if err := a.Register(pt, Task); err != nil {
		t.Fatal(err)
	}
	if !pt.started.Load() {
		t.Fatal("task transport not started")
	}
	if _, err := e.Resolve("pt.fake", 0, i2o.NodeNone); err != nil {
		t.Fatal("transport device not plugged")
	}
	routes := a.Routes()
	if len(routes) != 1 || routes[0] != "pt.fake" {
		t.Fatalf("routes %v", routes)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	_, a := newAgent(t)
	if err := a.Register(&fakePT{name: "pt.x"}, Task); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(&fakePT{name: "pt.x"}, Task); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup: %v", err)
	}
}

func TestForward(t *testing.T) {
	_, a := newAgent(t)
	pt := &fakePT{name: "pt.fake"}
	if err := a.Register(pt, Task); err != nil {
		t.Fatal(err)
	}
	m := &i2o.Message{Target: 5, Function: i2o.UtilNOP}
	if err := a.Forward("pt.fake", 2, m); err != nil {
		t.Fatal(err)
	}
	if len(pt.sent) != 1 || a.Stats().Sent != 1 {
		t.Fatalf("sent %d stats %+v", len(pt.sent), a.Stats())
	}
	if err := a.Forward("pt.none", 2, &i2o.Message{Target: 5, Function: i2o.UtilNOP}); !errors.Is(err, ErrUnknownRoute) {
		t.Fatalf("unknown route: %v", err)
	}
	if a.Stats().Errors != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestForwardSendError(t *testing.T) {
	_, a := newAgent(t)
	boom := errors.New("wire down")
	pt := &fakePT{name: "pt.bad", sendErr: boom}
	if err := a.Register(pt, Task); err != nil {
		t.Fatal(err)
	}
	if err := a.Forward("pt.bad", 2, &i2o.Message{Target: 5, Function: i2o.UtilNOP}); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if a.Stats().Errors != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestSuspendBlocksForward(t *testing.T) {
	_, a := newAgent(t)
	pt := &fakePT{name: "pt.fake"}
	if err := a.Register(pt, Task); err != nil {
		t.Fatal(err)
	}
	if err := a.Suspend("pt.fake", true); err != nil {
		t.Fatal(err)
	}
	err := a.Forward("pt.fake", 2, &i2o.Message{Target: 5, Function: i2o.UtilNOP})
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("suspended forward: %v", err)
	}
	if err := a.Suspend("pt.fake", false); err != nil {
		t.Fatal(err)
	}
	if err := a.Forward("pt.fake", 2, &i2o.Message{Target: 5, Function: i2o.UtilNOP}); err != nil {
		t.Fatalf("resumed forward: %v", err)
	}
	if err := a.Suspend("pt.none", true); !errors.Is(err, ErrUnknownRoute) {
		t.Fatalf("suspend unknown: %v", err)
	}
}

func TestSuspendViaParams(t *testing.T) {
	e, a := newAgent(t)
	pt := &fakePT{name: "pt.fake"}
	if err := a.Register(pt, Polling); err != nil {
		t.Fatal(err)
	}
	ptTID, err := e.Resolve("pt.fake", 0, i2o.NodeNone)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := i2o.EncodeParams([]i2o.Param{{Key: "suspended", Value: true}})
	rep, err := e.Request(&i2o.Message{
		Target: ptTID, Initiator: i2o.TIDExecutive,
		Function: i2o.UtilParamsSet, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Release()
	if err := a.Forward("pt.fake", 2, &i2o.Message{Target: 5, Function: i2o.UtilNOP}); !errors.Is(err, ErrSuspended) {
		t.Fatalf("params suspend not applied: %v", err)
	}
}

func TestPollingDelivery(t *testing.T) {
	e, a := newAgent(t)
	pt := &fakePT{name: "pt.poll"}
	if err := a.Register(pt, Polling); err != nil {
		t.Fatal(err)
	}
	// A frame for the executive: ExecStatusGet without reply expectation
	// just bumps the dispatch counter.
	before := e.Stats().Dispatched
	pt.enqueue(2, &i2o.Message{Target: i2o.TIDExecutive, Function: i2o.UtilNOP})
	deadline := time.After(2 * time.Second)
	for e.Stats().Dispatched == before {
		select {
		case <-deadline:
			t.Fatal("polled frame never dispatched")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if a.Stats().Received != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestSuspendedPollingPTNotScanned(t *testing.T) {
	e, a := newAgent(t)
	pt := &fakePT{name: "pt.poll"}
	if err := a.Register(pt, Polling); err != nil {
		t.Fatal(err)
	}
	if err := a.Suspend("pt.poll", true); err != nil {
		t.Fatal(err)
	}
	pt.enqueue(2, &i2o.Message{Target: i2o.TIDExecutive, Function: i2o.UtilNOP})
	time.Sleep(30 * time.Millisecond)
	if got := a.Stats().Received; got != 0 {
		t.Fatalf("suspended PT delivered %d frames", got)
	}
	_ = e
}

// TestResumeWakesParkedPollLoop pins the scan loop's parking behaviour:
// with every polling transport suspended the loop blocks (it must not
// burn the core spinning — see pollLoop), and resuming the transport
// wakes it so pending frames flow again.
func TestResumeWakesParkedPollLoop(t *testing.T) {
	_, a := newAgent(t)
	pt := &fakePT{name: "pt.poll"}
	if err := a.Register(pt, Polling); err != nil {
		t.Fatal(err)
	}
	if err := a.Suspend("pt.poll", true); err != nil {
		t.Fatal(err)
	}
	// Give the loop time to observe the empty polling set and park.
	time.Sleep(10 * time.Millisecond)
	pt.enqueue(2, &i2o.Message{Target: i2o.TIDExecutive, Function: i2o.UtilNOP})
	if err := a.Suspend("pt.poll", false); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for a.Stats().Received == 0 {
		select {
		case <-deadline:
			t.Fatal("resumed PT never scanned again")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestReturnProxyRewritesInitiator(t *testing.T) {
	e, a := newAgent(t)
	pt := &fakePT{name: "pt.poll"}
	if err := a.Register(pt, Polling); err != nil {
		t.Fatal(err)
	}
	// A remote frame whose initiator is TiD 0x42 on node 7.
	pt.enqueue(7, &i2o.Message{
		Target: i2o.TIDExecutive, Initiator: 0x42, Function: i2o.UtilNOP,
	})
	deadline := time.After(2 * time.Second)
	for {
		if _, ok := e.Table().Resolve("@peer:pt.poll", 0x42, 7); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("return proxy never created")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestCloseStopsTransports(t *testing.T) {
	e := executive.New(executive.Options{Name: "x", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	a, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	pt := &fakePT{name: "pt.fake"}
	if err := a.Register(pt, Task); err != nil {
		t.Fatal(err)
	}
	a.Close()
	a.Close() // idempotent
	if !pt.stopped.Load() {
		t.Fatal("transport not stopped")
	}
}

func TestModeString(t *testing.T) {
	if Task.String() == Polling.String() {
		t.Fatal("mode strings")
	}
}
