package pta_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/transport/loopback"
)

// flakyPT wraps a real transport and injects failures: every Nth send is
// either dropped silently (lost on the wire) or refused with an error.
type flakyPT struct {
	pta.PeerTransport
	n       atomic.Uint64
	every   uint64
	refuse  bool // true: Send errors; false: frame silently lost
	dropped atomic.Uint64
}

func (f *flakyPT) Send(dst i2o.NodeID, m *i2o.Message) error {
	if f.every > 0 && f.n.Add(1)%f.every == 0 {
		f.dropped.Add(1)
		m.Release()
		if f.refuse {
			return errors.New("flaky: injected send failure")
		}
		return nil // lost on the wire
	}
	return f.PeerTransport.Send(dst, m)
}

// flakyPair builds two executives whose A-side transport drops or refuses
// every Nth frame.
func flakyPair(t *testing.T, every uint64, refuse bool) (*executive.Executive, *executive.Executive, *flakyPT) {
	t.Helper()
	fabric := loopback.NewFabric()
	mk := func(id i2o.NodeID, wrap bool) (*executive.Executive, *flakyPT) {
		e := executive.New(executive.Options{
			Name: "flaky", Node: id,
			RequestTimeout: 200 * time.Millisecond,
			Logf:           func(string, ...any) {},
		})
		ep, err := fabric.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		var pt pta.PeerTransport = ep
		var fl *flakyPT
		if wrap {
			fl = &flakyPT{PeerTransport: ep, every: every, refuse: refuse}
			pt = fl
		}
		if err := agent.Register(pt, pta.Task); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		e.SetRoute(1, loopback.DefaultName)
		e.SetRoute(2, loopback.DefaultName)
		return e, fl
	}
	a, fl := mk(1, true)
	b, _ := mk(2, false)
	return a, b, fl
}

func plugFlakyEcho(t *testing.T, e *executive.Executive) {
	t.Helper()
	d := device.New("echo", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := e.Plug(d); err != nil {
		t.Fatal(err)
	}
}

func TestLostFramesTimeOutAndSystemRecovers(t *testing.T) {
	a, b, fl := flakyPair(t, 4, false) // every 4th frame silently lost
	plugFlakyEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	var ok, timeouts int
	for i := 0; i < 40; i++ {
		rep, err := a.Request(&i2o.Message{
			Target: target, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
			Payload: []byte{byte(i)},
		})
		switch {
		case err == nil:
			if rep.Payload[0] != byte(i) {
				t.Fatalf("call %d: wrong reply", i)
			}
			rep.Release()
			ok++
		case errors.Is(err, executive.ErrTimeout):
			timeouts++
		default:
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	if timeouts == 0 {
		t.Fatal("no frame was ever lost; injector inactive?")
	}
	if ok == 0 {
		t.Fatal("no call ever succeeded; system did not recover")
	}
	if fl.dropped.Load() == 0 {
		t.Fatal("drop counter")
	}
	// The system keeps working afterwards: next non-dropped call succeeds.
	recovered := false
	for i := 0; i < 4 && !recovered; i++ {
		rep, err := a.Request(&i2o.Message{
			Target: target, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		})
		if err == nil {
			rep.Release()
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no recovery after fault burst")
	}
}

func TestRefusedSendsSurfaceImmediately(t *testing.T) {
	a, b, _ := flakyPair(t, 3, true) // every 3rd send refused with an error
	plugFlakyEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	var immediate, ok int
	for i := 0; i < 30; i++ {
		start := time.Now()
		rep, err := a.Request(&i2o.Message{
			Target: target, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		})
		if err == nil {
			rep.Release()
			ok++
			continue
		}
		// A refused send must fail fast (no timeout wait): the transport
		// error propagates synchronously through Forward.
		if time.Since(start) < 100*time.Millisecond && !errors.Is(err, executive.ErrTimeout) {
			immediate++
		}
	}
	if immediate == 0 {
		t.Fatal("refused sends never surfaced as immediate errors")
	}
	if ok == 0 {
		t.Fatal("no call succeeded")
	}
}

func TestNoBufferLeaksUnderFaults(t *testing.T) {
	a, b, _ := flakyPair(t, 2, false) // heavy loss: every 2nd frame
	plugFlakyEcho(t, b)
	target, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		m, err := a.AllocMessage(256)
		if err != nil {
			t.Fatal(err)
		}
		m.Target = target
		m.Initiator = i2o.TIDExecutive
		m.XFunction = 1
		if rep, err := a.Request(m); err == nil {
			rep.Release()
		}
	}
	// Give in-flight frames a moment, then check both pools drained.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.Allocator().Stats().InUse == 0 && b.Allocator().Stats().InUse == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("buffers leaked under faults: a=%d b=%d",
		a.Allocator().Stats().InUse, b.Allocator().Stats().InUse)
}
