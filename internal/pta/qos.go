package pta

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
)

// Per-tenant QoS: traffic classes are mapped onto the seven I2O priority
// levels, and the agent admission-controls outbound forwards per class
// with a token bucket.  A class whose budget is exhausted either rejects
// the send outright or — when Queue is set — fails it with an error the
// retry policy recognizes as transient, so the frame backs off and
// re-attempts instead of being dropped (the paper's priority scheduler
// orders dispatch; this orders admission to the fabric).
//
// The control-plane autopilot actuates budgets at runtime through
// UtilParamsSet on the agent's device: a "qos.<class>" parameter with the
// value "<priority> <rate> [burst] [queue]" installs or updates a class,
// and the value "off" removes it (see doc/control-plane.md).

// ErrAdmission reports a forward refused by QoS admission control.
var ErrAdmission = errors.New("pta: qos admission rejected")

// QoSClass is one traffic class: a named token budget bound to an I2O
// priority level.
type QoSClass struct {
	// Name labels the class in parameters and metrics ("bulk", "control").
	Name string

	// Priority is the I2O level the class governs; every outbound frame
	// at this level is charged against the class's budget.
	Priority i2o.Priority

	// Rate is the budget in frames per second; <= 0 disables limiting
	// (the class then only documents the priority mapping).
	Rate int64

	// Burst is the bucket depth; 0 defaults to Rate.
	Burst int64

	// Queue selects the exhaustion behavior: true makes a refused send
	// retryable (the agent's retry policy queues and re-attempts it),
	// false fails it immediately.
	Queue bool
}

// admissionError carries the class identity and implements the sentinel
// matching: every instance Is ErrAdmission, and queue-class instances are
// additionally Is ErrTransient so the Forward retry loop backs off and
// re-attempts them.
type admissionError struct {
	class string
	queue bool
}

func (e *admissionError) Error() string {
	mode := "rejected"
	if e.queue {
		mode = "queued"
	}
	return fmt.Sprintf("pta: qos class %q budget exhausted (%s)", e.class, mode)
}

func (e *admissionError) Is(target error) bool {
	return target == ErrAdmission || (e.queue && target == ErrTransient)
}

// qosBucket is one class's token bucket, refilled lazily from the clock.
type qosBucket struct {
	cls QoSClass

	mu     sync.Mutex
	tokens float64
	last   time.Time

	cAdmit  *metrics.Counter
	cReject *metrics.Counter
}

// admit charges one frame against the bucket at time now.
func (b *qosBucket) admit(now time.Time) error {
	if b.cls.Rate <= 0 {
		b.cAdmit.Inc()
		return nil
	}
	b.mu.Lock()
	if b.last.IsZero() {
		b.tokens = float64(b.cls.Burst)
	} else if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * float64(b.cls.Rate)
		if max := float64(b.cls.Burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		b.cAdmit.Inc()
		return nil
	}
	b.mu.Unlock()
	b.cReject.Inc()
	return &admissionError{class: b.cls.Name, queue: b.cls.Queue}
}

// qosTable indexes the buckets by priority level.
type qosTable struct {
	byPrio [i2o.NumPriorities]*qosBucket
	all    []*qosBucket
}

// SetQoS installs the admission-control classes, replacing any previous
// set atomically.  An empty slice disables admission control.  Two
// classes may not claim the same priority level.
func (a *Agent) SetQoS(classes []QoSClass) error {
	if len(classes) == 0 {
		a.qos.Store(nil)
		return nil
	}
	reg := a.exec.Metrics()
	t := &qosTable{}
	for _, c := range classes {
		if c.Name == "" {
			return fmt.Errorf("pta: qos class with empty name")
		}
		if !c.Priority.Valid() {
			return fmt.Errorf("pta: qos class %q: priority %d out of range [0,%d)",
				c.Name, c.Priority, i2o.NumPriorities)
		}
		if t.byPrio[c.Priority] != nil {
			return fmt.Errorf("pta: qos classes %q and %q both claim priority %d",
				t.byPrio[c.Priority].cls.Name, c.Name, c.Priority)
		}
		if c.Burst <= 0 {
			c.Burst = c.Rate
		}
		b := &qosBucket{
			cls:     c,
			cAdmit:  reg.Counter("pta.qos." + c.Name + ".admitted"),
			cReject: reg.Counter("pta.qos." + c.Name + ".rejected"),
		}
		t.byPrio[c.Priority] = b
		t.all = append(t.all, b)
	}
	a.qos.Store(t)
	return nil
}

// QoS returns the installed classes, sorted by priority; nil when
// admission control is off.
func (a *Agent) QoS() []QoSClass {
	t := a.qos.Load()
	if t == nil {
		return nil
	}
	out := make([]QoSClass, 0, len(t.all))
	for _, b := range t.all {
		out = append(out, b.cls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}

// qosAdmit charges one outbound frame; nil when admission control is off
// or the frame's priority has no class.
func (a *Agent) qosAdmit(p i2o.Priority) error {
	t := a.qos.Load()
	if t == nil || !p.Valid() {
		return nil
	}
	b := t.byPrio[p]
	if b == nil {
		return nil
	}
	now := time.Now
	if a.qosNow != nil {
		now = a.qosNow
	}
	return b.admit(now())
}

// applyQoSParams folds "qos.<class>" parameter writes into the installed
// class set: the remote-actuation path behind UtilParamsSet on the
// agent's device.  Values are "<priority> <rate> [burst] [queue]" or
// "off" to remove the class.  Malformed writes are logged and skipped —
// a reconfiguration frame must not wedge the agent.
func (a *Agent) applyQoSParams(changed []i2o.Param) {
	touched := false
	byName := make(map[string]QoSClass)
	for _, c := range a.QoS() {
		byName[c.Name] = c
	}
	for _, p := range changed {
		name, ok := strings.CutPrefix(p.Key, "qos.")
		if !ok || name == "" {
			continue
		}
		val, ok := p.Value.(string)
		if !ok {
			a.exec.Logf("pta: qos parameter %q: value is %T, want string", p.Key, p.Value)
			continue
		}
		if val == "off" {
			delete(byName, name)
			touched = true
			continue
		}
		c, err := parseQoSValue(name, val)
		if err != nil {
			a.exec.Logf("pta: %v", err)
			continue
		}
		byName[name] = c
		touched = true
	}
	if !touched {
		return
	}
	classes := make([]QoSClass, 0, len(byName))
	for _, c := range byName {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].Priority < classes[j].Priority })
	if err := a.SetQoS(classes); err != nil {
		a.exec.Logf("pta: qos reconfiguration rejected: %v", err)
	}
}

// parseQoSValue decodes "<priority> <rate> [burst] [queue]".
func parseQoSValue(name, val string) (QoSClass, error) {
	f := strings.Fields(val)
	if len(f) < 2 || len(f) > 4 {
		return QoSClass{}, fmt.Errorf("qos class %q: value %q, want \"<priority> <rate> [burst] [queue]\"", name, val)
	}
	prio, err := strconv.ParseUint(f[0], 10, 8)
	if err != nil || !i2o.Priority(prio).Valid() {
		return QoSClass{}, fmt.Errorf("qos class %q: bad priority %q", name, f[0])
	}
	rate, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return QoSClass{}, fmt.Errorf("qos class %q: bad rate %q", name, f[1])
	}
	c := QoSClass{Name: name, Priority: i2o.Priority(prio), Rate: rate}
	if len(f) >= 3 {
		burst, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return QoSClass{}, fmt.Errorf("qos class %q: bad burst %q", name, f[2])
		}
		c.Burst = burst
	}
	if len(f) == 4 {
		q, err := strconv.ParseBool(f[3])
		if err != nil {
			return QoSClass{}, fmt.Errorf("qos class %q: bad queue flag %q", name, f[3])
		}
		c.Queue = q
	}
	return c, nil
}
