package pta

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/sgl"
)

// flakySGLPT refuses the first fail sends with a transient error —
// releasing the frame exactly as real transports do — and keeps every
// accepted frame for inspection.
type flakySGLPT struct {
	name string
	mu   sync.Mutex
	fail int
	sent []*i2o.Message
}

func (f *flakySGLPT) Name() string { return f.name }

func (f *flakySGLPT) Send(dst i2o.NodeID, m *i2o.Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail > 0 {
		f.fail--
		m.Release()
		return fmt.Errorf("%w: scripted refusal", ErrTransient)
	}
	f.sent = append(f.sent, m)
	return nil
}

func (f *flakySGLPT) Start(Deliver) error   { return nil }
func (f *flakySGLPT) Poll(Deliver, int) int { return 0 }
func (f *flakySGLPT) Stop() error           { return nil }

// A frame whose body is a segment list must survive transient-failure
// retries with the list intact: the transport released the frame, and the
// retry loop must re-attach the chain as a *list*, not as a flat buffer —
// and the guard's release must not tear the chain down under the transport
// that finally accepted it.
func TestRetryPreservesSegmentList(t *testing.T) {
	_, a := newAgent(t)
	pt := &flakySGLPT{name: "pt.flaky", fail: 2}
	if err := a.Register(pt, Task); err != nil {
		t.Fatal(err)
	}
	a.SetRetryPolicy(RetryPolicy{Attempts: 4, Backoff: time.Millisecond})

	alloc := pool.NewTable(0)
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	l, err := sgl.FromBytes(alloc, data, 4096)
	if err != nil {
		t.Fatal(err)
	}
	m := i2o.AcquireMessage()
	m.Target, m.Initiator = 5, i2o.TIDExecutive
	m.Function, m.Org, m.XFunction = i2o.FuncPrivate, i2o.OrgXDAQ, 0x77
	m.AttachList(l)

	if err := a.Forward("pt.flaky", 2, m); err != nil {
		t.Fatalf("forward with retries: %v", err)
	}
	if len(pt.sent) != 1 {
		t.Fatalf("transport accepted %d frames, want 1", len(pt.sent))
	}
	got := pt.sent[0]
	if got.PayloadLen() != len(data) {
		t.Fatalf("accepted frame carries %d payload bytes, want %d — the body was lost across retries",
			got.PayloadLen(), len(data))
	}
	gl, ok := got.List().(*sgl.List)
	if !ok {
		t.Fatalf("accepted frame has no segment list (buffer %T)", got.Buffer())
	}
	if !bytes.Equal(gl.Bytes(), data) {
		t.Fatal("accepted frame's chained body differs from the original")
	}

	// The transport writes the frame out and recycles it; every block must
	// go home.
	got.Recycle()
	if inUse := alloc.Stats().InUse; inUse != 0 {
		t.Fatalf("%d blocks leaked across retries", inUse)
	}
}
