package device

import "xdaq/internal/i2o"

// ReplyIfExpected sends a success reply with the given payload when the
// request asked for one.  Handlers use it so that fire-and-forget senders
// never receive unsolicited frames (a DDM "can only reply to messages").
func ReplyIfExpected(ctx *Context, req *i2o.Message, payload []byte) error {
	if !req.Flags.Has(i2o.FlagReplyExpected) {
		return nil
	}
	rep := i2o.NewReply(req)
	rep.Payload = payload
	return ctx.Host.Send(rep)
}

// defaultStandard returns the built-in behaviour for a standard function
// code, or nil when there is none.  These are the "default procedures"
// §3.2 promises for events without user code, giving every device a
// homogeneous, fault-tolerant base behaviour.
func (d *Device) defaultStandard(fn i2o.Function) Handler {
	switch fn {
	case i2o.UtilNOP:
		return func(ctx *Context, m *i2o.Message) error {
			return ReplyIfExpected(ctx, m, nil)
		}
	case i2o.UtilAbort:
		return func(ctx *Context, m *i2o.Message) error {
			return ReplyIfExpected(ctx, m, nil)
		}
	case i2o.UtilParamsGet:
		return d.handleParamsGet
	case i2o.UtilParamsSet:
		return d.handleParamsSet
	case i2o.UtilEventRegister:
		return d.handleEventRegister
	case i2o.ExecSysEnable:
		return func(ctx *Context, m *i2o.Message) error {
			d.SetState(Operational)
			return ReplyIfExpected(ctx, m, nil)
		}
	case i2o.ExecSysQuiesce:
		return func(ctx *Context, m *i2o.Message) error {
			d.SetState(Quiesced)
			return ReplyIfExpected(ctx, m, nil)
		}
	case i2o.ExecSysClear:
		return func(ctx *Context, m *i2o.Message) error {
			return ReplyIfExpected(ctx, m, nil)
		}
	}
	return nil
}

func (d *Device) handleParamsGet(ctx *Context, m *i2o.Message) error {
	keys, err := i2o.DecodeKeys(m.Payload)
	if err != nil {
		return err
	}
	var params []i2o.Param
	if len(keys) == 0 {
		params = d.params.All()
	} else {
		for _, k := range keys {
			if v, ok := d.params.Get(k); ok {
				params = append(params, i2o.Param{Key: k, Value: v})
			}
		}
	}
	// State is computed, not stored.
	if len(keys) == 0 {
		params = append(params, i2o.Param{Key: "state", Value: d.State().String()})
		i2o.SortParams(params)
	}
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	return ReplyIfExpected(ctx, m, payload)
}

func (d *Device) handleParamsSet(ctx *Context, m *i2o.Message) error {
	params, err := i2o.DecodeParams(m.Payload)
	if err != nil {
		return err
	}
	for _, p := range params {
		d.params.Set(p.Key, p.Value)
	}
	d.params.notifySet(params)
	return ReplyIfExpected(ctx, m, nil)
}

func (d *Device) handleEventRegister(ctx *Context, m *i2o.Message) error {
	d.subMu.Lock()
	if d.subscribers == nil {
		d.subscribers = make(map[i2o.TID]bool)
	}
	d.subscribers[m.Initiator] = true
	d.subMu.Unlock()
	return ReplyIfExpected(ctx, m, nil)
}

// Notify sends a private event frame with the given extended function code
// and payload to every registered subscriber (UtilEventRegister).  Failures
// to individual subscribers are reported to the executive log but do not
// stop the fan-out.
func (d *Device) Notify(xfunc uint16, priority i2o.Priority, payload []byte) error {
	ctx, err := d.Ctx()
	if err != nil {
		return err
	}
	d.subMu.RLock()
	targets := make([]i2o.TID, 0, len(d.subscribers))
	for t := range d.subscribers {
		targets = append(targets, t)
	}
	d.subMu.RUnlock()
	for _, t := range targets {
		m := &i2o.Message{
			Priority:  priority,
			Target:    t,
			Initiator: d.TID(),
			Function:  i2o.FuncPrivate,
			Org:       d.org,
			XFunction: xfunc,
			Payload:   payload,
		}
		if err := ctx.Host.Send(m); err != nil {
			ctx.Host.Logf("device %s: notify %v: %v", d.class, t, err)
		}
	}
	return nil
}

// Subscribers returns the TiDs registered for event notification.
func (d *Device) Subscribers() []i2o.TID {
	d.subMu.RLock()
	defer d.subMu.RUnlock()
	out := make([]i2o.TID, 0, len(d.subscribers))
	for t := range d.subscribers {
		out = append(out, t)
	}
	return out
}
