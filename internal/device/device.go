// Package device implements I2O device classes: the unit of software
// composition in XDAQ.
//
// In the paper's model (§3.3) an application is merely a new, private
// device class.  A device implements (i) the executive interface, (ii) the
// utility interface and (iii) its own class interface — private messages
// bound to handler functions.  Package device provides the first two with
// sensible defaults ("the system can provide default procedures if for a
// given event no code is supplied") and a binding table for the third, so
// application code is exactly the set of private handlers plus optional
// lifecycle callbacks — the Go analogue of inheriting from i2oListener.
package device

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xdaq/internal/i2o"
	"xdaq/internal/pool"
)

// State is a device's operational state.
type State int32

const (
	// Ready: plugged and configured but not yet enabled; private frames
	// are rejected, executive and utility frames are served.
	Ready State = iota

	// Operational: fully dispatching.
	Operational

	// Quiesced: temporarily stopped by ExecSysQuiesce; like Ready but
	// reached from Operational.
	Quiesced

	// Faulted: taken out of service by the executive after a handler
	// panic or watchdog termination.
	Faulted
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Operational:
		return "operational"
	case Quiesced:
		return "quiesced"
	case Faulted:
		return "faulted"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Host is the executive-side interface devices program against: the frame
// services of §4 (frameSend, frameReply, the buffer pool) plus address
// resolution.  It is implemented by *executive.Executive; tests use fakes.
type Host interface {
	// Node returns this IOP's identity.
	Node() i2o.NodeID

	// Alloc takes a frame payload buffer from the executive's pool
	// (frameAlloc).
	Alloc(n int) (*pool.Buffer, error)

	// Send routes a message to its target, local or remote (frameSend).
	// Ownership of an attached payload buffer passes to the executive.
	Send(m *i2o.Message) error

	// Request sends a message with FlagReplyExpected and blocks for the
	// correlated reply or an error.
	Request(m *i2o.Message) (*i2o.Message, error)

	// Resolve returns the local TiD for a (class, instance) pair on the
	// given node, creating a proxy entry when the device is remote and
	// already known to the address table.
	Resolve(class string, instance int, node i2o.NodeID) (i2o.TID, error)

	// Logf emits a diagnostic line tagged with the executive's name.
	Logf(format string, args ...any)
}

// Context carries the executive binding of a plugged device into its
// handlers and lifecycle callbacks.
type Context struct {
	Host Host
	Self *Device
}

// Handler processes one frame addressed to the device.  Returning an error
// makes the executive send a failure reply to the initiator (when one is
// expected); returning nil means the handler took care of any reply itself.
type Handler func(ctx *Context, m *i2o.Message) error

// Errors.
var (
	// ErrNoHandler reports a frame with no bound handler and no default.
	ErrNoHandler = errors.New("device: no handler bound")

	// ErrNotPlugged reports use of executive services before Plug.
	ErrNotPlugged = errors.New("device: not plugged into an executive")
)

// Listener is the contract a device module presents to an executive — the
// Go analogue of the paper's i2oListener class.  *Device implements it;
// the interface exists so that code composing modules (registries,
// controllers, tests) can treat them uniformly without reaching for the
// concrete type.
type Listener interface {
	// Class and Instance name the module in the address table.
	Class() string
	Instance() int

	// Plugged binds the module to an executive after TiD assignment;
	// Unplugged runs after removal.
	Plugged(host Host, id i2o.TID) error
	Unplugged()

	// Lookup selects the handler for a frame; Accepts gates delivery by
	// device state.
	Lookup(m *i2o.Message) (Handler, *Context, error)
	Accepts(m *i2o.Message) bool
}

var _ Listener = (*Device)(nil)

// Device is one device-class instance.  Create it with New, bind private
// handlers, then plug it into an executive.
type Device struct {
	class    string
	instance int
	org      i2o.OrgID

	tid   atomic.Uint32 // i2o.TID once plugged
	state atomic.Int32

	mu       sync.RWMutex
	private  map[uint16]Handler
	standard map[i2o.Function]Handler
	fallback Handler
	ctx      *Context

	params *Params

	subMu       sync.RWMutex
	subscribers map[i2o.TID]bool

	// OnPlugged, if set, runs after the executive assigned a TiD; the
	// paper's plugin callback where a module retrieves parameters and
	// triggers proxy creation.  OnUnplugged runs after removal.
	OnPlugged   func(ctx *Context) error
	OnUnplugged func()
}

// New creates a device of the given class and instance number, using the
// framework organization ID for its private messages.
func New(class string, instance int) *Device {
	d := &Device{
		class:    class,
		instance: instance,
		org:      i2o.OrgXDAQ,
		private:  make(map[uint16]Handler),
		standard: make(map[i2o.Function]Handler),
		params:   NewParams(),
	}
	d.state.Store(int32(Ready))
	return d
}

// Class returns the device class name.
func (d *Device) Class() string { return d.class }

// Instance returns the instance number within the class.
func (d *Device) Instance() int { return d.instance }

// Org returns the organization ID the device answers private frames for.
func (d *Device) Org() i2o.OrgID { return d.org }

// SetOrg overrides the private-message organization ID; it must be called
// before the device is plugged.
func (d *Device) SetOrg(org i2o.OrgID) { d.org = org }

// TID returns the device's assigned target identifier, or i2o.TIDNone
// before the device is plugged.
func (d *Device) TID() i2o.TID { return i2o.TID(d.tid.Load()) }

// State returns the operational state.
func (d *Device) State() State { return State(d.state.Load()) }

// SetState transitions the device; the executive drives this from
// ExecSysEnable/ExecSysQuiesce frames and fault handling.
func (d *Device) SetState(s State) { d.state.Store(int32(s)) }

// Params returns the device's parameter store, served through
// UtilParamsGet/UtilParamsSet.
func (d *Device) Params() *Params { return d.params }

// Bind associates a private function code with a handler.  Binding is the
// paper's "local dispatcher" (§3.2): adding an event requires nothing but
// adding it to the device module.
func (d *Device) Bind(xfunc uint16, h Handler) {
	d.mu.Lock()
	d.private[xfunc] = h
	d.mu.Unlock()
}

// BindFunction overrides the handling of a standard (non-private) function
// code, replacing the built-in default.
func (d *Device) BindFunction(fn i2o.Function, h Handler) {
	d.mu.Lock()
	d.standard[fn] = h
	d.mu.Unlock()
}

// SetFallback installs the handler used when no binding matches; without
// one, unmatched frames are answered with a FailUnknownFunction reply.
func (d *Device) SetFallback(h Handler) {
	d.mu.Lock()
	d.fallback = h
	d.mu.Unlock()
}

// Plugged is invoked by the executive after TiD assignment.  It publishes
// the standard parameters and runs the OnPlugged callback.
func (d *Device) Plugged(host Host, id i2o.TID) error {
	d.tid.Store(uint32(id))
	ctx := &Context{Host: host, Self: d}
	d.mu.Lock()
	d.ctx = ctx
	d.mu.Unlock()
	d.params.Set("class", d.class)
	d.params.Set("instance", int64(d.instance))
	d.params.Set("tid", int64(id))
	if d.OnPlugged != nil {
		return d.OnPlugged(ctx)
	}
	return nil
}

// Unplugged is invoked by the executive after removal.
func (d *Device) Unplugged() {
	d.tid.Store(uint32(i2o.TIDNone))
	d.mu.Lock()
	d.ctx = nil
	d.mu.Unlock()
	if d.OnUnplugged != nil {
		d.OnUnplugged()
	}
}

// Ctx returns the executive binding, or ErrNotPlugged.
func (d *Device) Ctx() (*Context, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.ctx == nil {
		return nil, ErrNotPlugged
	}
	return d.ctx, nil
}

// lookup selects the handler for m without running it.
func (d *Device) lookup(m *i2o.Message) (Handler, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if m.Function.IsPrivate() {
		if m.Org == d.org {
			if h, ok := d.private[m.XFunction]; ok {
				return h, nil
			}
		}
		if d.fallback != nil {
			return d.fallback, nil
		}
		return nil, fmt.Errorf("%w: %s private %#04x (org %#04x)", ErrNoHandler, d.class, m.XFunction, uint16(m.Org))
	}
	if h, ok := d.standard[m.Function]; ok {
		return h, nil
	}
	if h := d.defaultStandard(m.Function); h != nil {
		return h, nil
	}
	if d.fallback != nil {
		return d.fallback, nil
	}
	return nil, fmt.Errorf("%w: %s function %v", ErrNoHandler, d.class, m.Function)
}

// Dispatch runs the handler for m.  The executive calls it from the
// dispatch loop; tests may call it directly with a fake Host bound via
// Plugged.
func (d *Device) Dispatch(m *i2o.Message) error {
	ctx, err := d.Ctx()
	if err != nil {
		return err
	}
	h, err := d.lookup(m)
	if err != nil {
		return err
	}
	return h(ctx, m)
}

// Lookup exposes handler selection to the executive so that it can time
// demultiplexing and upcall separately (the whitebox probes of Table 1).
func (d *Device) Lookup(m *i2o.Message) (Handler, *Context, error) {
	ctx, err := d.Ctx()
	if err != nil {
		return nil, nil, err
	}
	h, err := d.lookup(m)
	return h, ctx, err
}

// Accepts reports whether the device should be handed a frame in its
// current state: executive and utility frames are always served so the
// device stays configurable; private frames require Operational.
func (d *Device) Accepts(m *i2o.Message) bool {
	if !m.Function.IsPrivate() {
		return d.State() != Faulted || m.Function.IsExecutive()
	}
	return d.State() == Operational
}

func (d *Device) String() string {
	return fmt.Sprintf("%s[%d]/%v(%v)", d.class, d.instance, d.TID(), d.State())
}
