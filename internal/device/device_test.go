package device

import (
	"errors"
	"fmt"
	"testing"

	"xdaq/internal/i2o"
	"xdaq/internal/pool"
)

// fakeHost records sent frames.
type fakeHost struct {
	alloc pool.Allocator
	sent  []*i2o.Message
	logs  []string
}

func newFakeHost() *fakeHost { return &fakeHost{alloc: pool.NewTable(0)} }

func (h *fakeHost) Node() i2o.NodeID                  { return 1 }
func (h *fakeHost) Alloc(n int) (*pool.Buffer, error) { return h.alloc.Alloc(n) }
func (h *fakeHost) Send(m *i2o.Message) error         { h.sent = append(h.sent, m); return nil }
func (h *fakeHost) Request(*i2o.Message) (*i2o.Message, error) {
	return nil, errors.New("fakeHost: no request support")
}
func (h *fakeHost) Resolve(string, int, i2o.NodeID) (i2o.TID, error) {
	return i2o.TIDNone, errors.New("fakeHost: no resolve support")
}
func (h *fakeHost) Logf(format string, args ...any) {
	h.logs = append(h.logs, fmt.Sprintf(format, args...))
}

func plugged(t *testing.T, d *Device) *fakeHost {
	t.Helper()
	h := newFakeHost()
	if err := d.Plugged(h, 0x10); err != nil {
		t.Fatal(err)
	}
	d.SetState(Operational)
	return h
}

func privateFrame(x uint16) *i2o.Message {
	return &i2o.Message{
		Flags: i2o.FlagReplyExpected, Priority: i2o.PriorityNormal,
		Target: 0x10, Initiator: 0x20,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: x,
	}
}

func TestBindAndDispatch(t *testing.T) {
	d := New("echo", 0)
	called := false
	d.Bind(1, func(ctx *Context, m *i2o.Message) error {
		called = true
		return ReplyIfExpected(ctx, m, []byte("pong"))
	})
	h := plugged(t, d)
	if err := d.Dispatch(privateFrame(1)); err != nil {
		t.Fatal(err)
	}
	if !called || len(h.sent) != 1 {
		t.Fatalf("called=%v sent=%d", called, len(h.sent))
	}
	rep := h.sent[0]
	if !rep.Flags.Has(i2o.FlagReply) || string(rep.Payload) != "pong" || rep.Target != 0x20 {
		t.Fatalf("reply %v payload %q", rep, rep.Payload)
	}
}

func TestDispatchUnknownPrivate(t *testing.T) {
	d := New("echo", 0)
	plugged(t, d)
	if err := d.Dispatch(privateFrame(99)); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("unknown xfunc: %v", err)
	}
}

func TestDispatchWrongOrg(t *testing.T) {
	d := New("echo", 0)
	d.Bind(1, func(*Context, *i2o.Message) error { return nil })
	plugged(t, d)
	m := privateFrame(1)
	m.Org = 0x1111
	if err := d.Dispatch(m); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("foreign org: %v", err)
	}
}

func TestFallbackHandler(t *testing.T) {
	d := New("any", 0)
	var got uint16
	d.SetFallback(func(ctx *Context, m *i2o.Message) error {
		got = m.XFunction
		return nil
	})
	plugged(t, d)
	if err := d.Dispatch(privateFrame(7)); err != nil || got != 7 {
		t.Fatalf("fallback: %v got=%d", err, got)
	}
}

func TestDispatchBeforePlug(t *testing.T) {
	d := New("echo", 0)
	if err := d.Dispatch(privateFrame(1)); !errors.Is(err, ErrNotPlugged) {
		t.Fatalf("unplugged dispatch: %v", err)
	}
}

func TestDefaultNOP(t *testing.T) {
	d := New("echo", 0)
	h := plugged(t, d)
	m := privateFrame(0)
	m.Function = i2o.UtilNOP
	if err := d.Dispatch(m); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 || !h.sent[0].Flags.Has(i2o.FlagReply) {
		t.Fatal("NOP default must reply")
	}
	// Without FlagReplyExpected there must be no reply.
	m2 := privateFrame(0)
	m2.Function = i2o.UtilNOP
	m2.Flags = 0
	if err := d.Dispatch(m2); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 {
		t.Fatal("unsolicited reply sent")
	}
}

func TestDefaultParamsGetSet(t *testing.T) {
	d := New("cfg", 2)
	h := plugged(t, d)
	d.Params().Set("rate", int64(100))

	// Set "rate" and a new key via UtilParamsSet.
	payload, err := i2o.EncodeParams([]i2o.Param{
		{Key: "rate", Value: int64(250)},
		{Key: "mode", Value: "burst"},
	})
	if err != nil {
		t.Fatal(err)
	}
	set := privateFrame(0)
	set.Function = i2o.UtilParamsSet
	set.Payload = payload
	if err := d.Dispatch(set); err != nil {
		t.Fatal(err)
	}
	if d.Params().Int("rate", 0) != 250 || d.Params().String("mode", "") != "burst" {
		t.Fatalf("params after set: %v %v", d.Params().Int("rate", 0), d.Params().String("mode", ""))
	}

	// Read selected keys back.
	keys, err := i2o.EncodeKeys([]string{"rate", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	get := privateFrame(0)
	get.Function = i2o.UtilParamsGet
	get.Payload = keys
	if err := d.Dispatch(get); err != nil {
		t.Fatal(err)
	}
	rep := h.sent[len(h.sent)-1]
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 1 || params[0].Key != "rate" || params[0].Value != int64(250) {
		t.Fatalf("get reply %v", params)
	}

	// Reading all parameters includes the standard ones and state.
	getAll := privateFrame(0)
	getAll.Function = i2o.UtilParamsGet
	getAll.Payload, _ = i2o.EncodeKeys(nil)
	if err := d.Dispatch(getAll); err != nil {
		t.Fatal(err)
	}
	rep = h.sent[len(h.sent)-1]
	params, _ = i2o.DecodeParams(rep.Payload)
	found := map[string]any{}
	for _, p := range params {
		found[p.Key] = p.Value
	}
	if found["class"] != "cfg" || found["instance"] != int64(2) || found["state"] != "operational" {
		t.Fatalf("all params %v", found)
	}
}

func TestParamsOnSetCallback(t *testing.T) {
	d := New("cfg", 0)
	plugged(t, d)
	var seen []i2o.Param
	d.Params().OnSet(func(ps []i2o.Param) { seen = ps })
	payload, _ := i2o.EncodeParams([]i2o.Param{{Key: "k", Value: "v"}})
	set := privateFrame(0)
	set.Function = i2o.UtilParamsSet
	set.Payload = payload
	if err := d.Dispatch(set); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0].Key != "k" {
		t.Fatalf("OnSet saw %v", seen)
	}
}

func TestEnableQuiesceStateMachine(t *testing.T) {
	d := New("s", 0)
	h := plugged(t, d)
	q := privateFrame(0)
	q.Function = i2o.ExecSysQuiesce
	if err := d.Dispatch(q); err != nil {
		t.Fatal(err)
	}
	if d.State() != Quiesced {
		t.Fatalf("state %v", d.State())
	}
	// Quiesced devices refuse private frames but accept executive ones.
	if d.Accepts(privateFrame(1)) {
		t.Fatal("quiesced device accepted a private frame")
	}
	e := privateFrame(0)
	e.Function = i2o.ExecSysEnable
	if !d.Accepts(e) {
		t.Fatal("quiesced device refused ExecSysEnable")
	}
	if err := d.Dispatch(e); err != nil {
		t.Fatal(err)
	}
	if d.State() != Operational || !d.Accepts(privateFrame(1)) {
		t.Fatalf("state %v after enable", d.State())
	}
	_ = h
}

func TestFaultedAcceptsOnlyExecutive(t *testing.T) {
	d := New("f", 0)
	plugged(t, d)
	d.SetState(Faulted)
	if d.Accepts(privateFrame(1)) {
		t.Fatal("faulted device accepted private frame")
	}
	nop := privateFrame(0)
	nop.Function = i2o.UtilNOP
	if d.Accepts(nop) {
		t.Fatal("faulted device accepted utility frame")
	}
	en := privateFrame(0)
	en.Function = i2o.ExecSysEnable
	if !d.Accepts(en) {
		t.Fatal("faulted device refused executive frame")
	}
}

func TestBindFunctionOverridesDefault(t *testing.T) {
	d := New("o", 0)
	override := false
	d.BindFunction(i2o.UtilNOP, func(ctx *Context, m *i2o.Message) error {
		override = true
		return nil
	})
	plugged(t, d)
	m := privateFrame(0)
	m.Function = i2o.UtilNOP
	if err := d.Dispatch(m); err != nil || !override {
		t.Fatalf("override: %v %v", err, override)
	}
}

func TestEventRegisterAndNotify(t *testing.T) {
	d := New("src", 0)
	h := plugged(t, d)
	reg := privateFrame(0)
	reg.Function = i2o.UtilEventRegister
	reg.Initiator = 0x33
	if err := d.Dispatch(reg); err != nil {
		t.Fatal(err)
	}
	if subs := d.Subscribers(); len(subs) != 1 || subs[0] != 0x33 {
		t.Fatalf("subscribers %v", subs)
	}
	h.sent = nil
	if err := d.Notify(0x42, i2o.PriorityHigh, []byte("evt")); err != nil {
		t.Fatal(err)
	}
	if len(h.sent) != 1 {
		t.Fatalf("notify sent %d", len(h.sent))
	}
	evt := h.sent[0]
	if evt.Target != 0x33 || evt.XFunction != 0x42 || evt.Priority != i2o.PriorityHigh || string(evt.Payload) != "evt" {
		t.Fatalf("event %v", evt)
	}
}

func TestPluggedLifecycle(t *testing.T) {
	d := New("life", 0)
	var pluggedCalled, unpluggedCalled bool
	d.OnPlugged = func(ctx *Context) error {
		pluggedCalled = true
		if ctx.Self != d || ctx.Host == nil {
			t.Error("bad context")
		}
		return nil
	}
	d.OnUnplugged = func() { unpluggedCalled = true }
	h := newFakeHost()
	if err := d.Plugged(h, 0x55); err != nil {
		t.Fatal(err)
	}
	if !pluggedCalled || d.TID() != 0x55 {
		t.Fatalf("plugged=%v tid=%v", pluggedCalled, d.TID())
	}
	if d.Params().Int("tid", 0) != 0x55 {
		t.Fatal("tid param not published")
	}
	d.Unplugged()
	if !unpluggedCalled || d.TID() != i2o.TIDNone {
		t.Fatalf("unplugged=%v tid=%v", unpluggedCalled, d.TID())
	}
	if _, err := d.Ctx(); !errors.Is(err, ErrNotPlugged) {
		t.Fatal("ctx survives unplug")
	}
}

func TestOnPluggedError(t *testing.T) {
	d := New("bad", 0)
	boom := errors.New("boom")
	d.OnPlugged = func(*Context) error { return boom }
	if err := d.Plugged(newFakeHost(), 0x1); !errors.Is(err, boom) {
		t.Fatalf("OnPlugged error: %v", err)
	}
}

func TestParamsTypedGetters(t *testing.T) {
	p := NewParams()
	p.Set("s", "str")
	p.Set("i", int64(-5))
	p.Set("u", uint64(7))
	p.Set("f", 2.5)
	p.Set("b", true)
	p.Set("weird", struct{ X int }{1}) // coerced to string

	if p.String("s", "") != "str" || p.String("missing", "d") != "d" || p.String("i", "d") != "d" {
		t.Fatal("String getter")
	}
	if p.Int("i", 0) != -5 || p.Int("u", 0) != 7 || p.Int("missing", 9) != 9 || p.Int("s", 9) != 9 {
		t.Fatal("Int getter")
	}
	if p.Float("f", 0) != 2.5 || p.Float("missing", 1.5) != 1.5 {
		t.Fatal("Float getter")
	}
	if !p.Bool("b", false) || p.Bool("missing", true) != true {
		t.Fatal("Bool getter")
	}
	if v, ok := p.Get("weird"); !ok {
		t.Fatal("coerced value missing")
	} else if _, isString := v.(string); !isString {
		t.Fatalf("coercion produced %T", v)
	}
	// Huge uint64 does not fit int64.
	p.Set("huge", uint64(1)<<63)
	if p.Int("huge", -1) != -1 {
		t.Fatal("huge uint64 must not convert")
	}
}

func TestStateStrings(t *testing.T) {
	for s := Ready; s <= Faulted; s++ {
		if s.String() == "" {
			t.Fatal("empty state name")
		}
	}
	if State(42).String() == "" {
		t.Fatal("unknown state name")
	}
	d := New("str", 3)
	if d.String() == "" {
		t.Fatal("device string")
	}
}

func TestSetOrg(t *testing.T) {
	d := New("org", 0)
	d.SetOrg(0x7777)
	d.Bind(1, func(ctx *Context, m *i2o.Message) error { return nil })
	plugged(t, d)
	m := privateFrame(1)
	m.Org = 0x7777
	if err := d.Dispatch(m); err != nil {
		t.Fatalf("own org: %v", err)
	}
	if err := d.Dispatch(privateFrame(1)); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("framework org must not match: %v", err)
	}
}
