package device

import (
	"fmt"
	"sync"

	"xdaq/internal/i2o"
)

// Params is a device's thread-safe parameter store, exposed to the cluster
// through UtilParamsGet/UtilParamsSet.  Values are restricted to the wire
// types of i2o.Param.
type Params struct {
	mu    sync.RWMutex
	m     map[string]any
	onSet func([]i2o.Param)
}

// NewParams returns an empty store.
func NewParams() *Params {
	return &Params{m: make(map[string]any)}
}

// Set stores a value.  Unsupported types are coerced via fmt.Sprint to a
// string so a buggy caller degrades to something inspectable rather than a
// silent drop.
func (p *Params) Set(key string, value any) {
	switch value.(type) {
	case string, int64, uint64, float64, bool, []byte:
	default:
		value = fmt.Sprint(value)
	}
	p.mu.Lock()
	p.m[key] = value
	p.mu.Unlock()
}

// Get returns the value for key.
func (p *Params) Get(key string) (any, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	v, ok := p.m[key]
	return v, ok
}

// String returns the string value of key, or def when missing or not a
// string.
func (p *Params) String(key, def string) string {
	if v, ok := p.Get(key); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

// Int returns the int64 value of key, accepting uint64 where it fits, or
// def otherwise.
func (p *Params) Int(key string, def int64) int64 {
	v, ok := p.Get(key)
	if !ok {
		return def
	}
	switch n := v.(type) {
	case int64:
		return n
	case uint64:
		if n <= 1<<63-1 {
			return int64(n)
		}
	}
	return def
}

// Float returns the float64 value of key, or def.
func (p *Params) Float(key string, def float64) float64 {
	if v, ok := p.Get(key); ok {
		if f, ok := v.(float64); ok {
			return f
		}
	}
	return def
}

// Bool returns the bool value of key, or def.
func (p *Params) Bool(key string, def bool) bool {
	if v, ok := p.Get(key); ok {
		if b, ok := v.(bool); ok {
			return b
		}
	}
	return def
}

// All returns a snapshot of every parameter, unordered.
func (p *Params) All() []i2o.Param {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]i2o.Param, 0, len(p.m))
	for k, v := range p.m {
		out = append(out, i2o.Param{Key: k, Value: v})
	}
	return out
}

// OnSet installs a callback invoked after a UtilParamsSet frame updated the
// store, with the parameters that changed.  Devices use it to react to
// reconfiguration.
func (p *Params) OnSet(fn func([]i2o.Param)) {
	p.mu.Lock()
	p.onSet = fn
	p.mu.Unlock()
}

// notifySet invokes the OnSet callback, if any, outside the store lock.
func (p *Params) notifySet(changed []i2o.Param) {
	p.mu.RLock()
	fn := p.onSet
	p.mu.RUnlock()
	if fn != nil {
		fn(changed)
	}
}
