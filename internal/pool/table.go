package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Table is the optimized allocation scheme described in §5 of the paper:
// blocks are created on demand, and a precomputed table matches a requested
// size to its bucket in constant time ("it relies on a table based matching
// from requested memory size to pool buffer size, thus the time needed to
// allocate a frame shrinks dramatically for applications that use similar
// buffer sizes throughout their lifetimes").
type Table struct {
	counters
	buckets [numBuckets]tableBucket
	retain  int // free blocks kept per bucket; excess goes to the garbage collector
	dead    atomic.Bool
}

type tableBucket struct {
	mu   sync.Mutex
	free []*Buffer
	size int
}

const (
	minBucketSize = 64
	numBuckets    = 13 // 64 B … 256 KB in powers of two
	granularity   = 64
)

// sizeToBucket maps (size+granularity-1)/granularity to a bucket index.
var sizeToBucket [MaxBlock/granularity + 1]uint8

func init() {
	bucket, bsize := 0, minBucketSize
	for i := range sizeToBucket {
		need := i * granularity
		for need > bsize {
			bucket++
			bsize <<= 1
		}
		sizeToBucket[i] = uint8(bucket)
	}
	if bucket != numBuckets-1 {
		panic(fmt.Sprintf("pool: bucket table covers %d buckets, expected %d", bucket+1, numBuckets))
	}
}

// DefaultRetain is the per-bucket free list depth kept by NewTable.
const DefaultRetain = 512

// NewTable builds a Table pool that keeps up to retain free blocks per
// bucket; retain <= 0 selects DefaultRetain.
func NewTable(retain int) *Table {
	if retain <= 0 {
		retain = DefaultRetain
	}
	p := &Table{retain: retain}
	size := minBucketSize
	for i := range p.buckets {
		p.buckets[i].size = size
		size <<= 1
	}
	return p
}

// Name implements Allocator.
func (p *Table) Name() string { return "table" }

// BucketSize returns the block size a request of n bytes is served from.
func BucketSize(n int) (int, error) {
	if n < 0 || n > MaxBlock {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	idx := sizeToBucket[(n+granularity-1)/granularity]
	return minBucketSize << idx, nil
}

// Alloc implements Allocator: a table lookup, then a pop from the bucket's
// free list, growing on demand.
func (p *Table) Alloc(n int) (*Buffer, error) {
	if n < 0 || n > MaxBlock {
		p.fails.Add(1)
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	idx := int(sizeToBucket[(n+granularity-1)/granularity])
	b := &p.buckets[idx]

	if p.dead.Load() {
		p.fails.Add(1)
		return nil, ErrClosed
	}
	b.mu.Lock()
	var buf *Buffer
	if k := len(b.free); k > 0 {
		buf = b.free[k-1]
		b.free[k-1] = nil
		b.free = b.free[:k-1]
		b.mu.Unlock()
	} else {
		b.mu.Unlock()
		buf = &Buffer{data: make([]byte, b.size), owner: p, bucket: idx}
		p.grows.Add(1)
	}
	buf.reset(n)
	p.onAlloc()
	return buf, nil
}

func (p *Table) recycle(buf *Buffer) {
	b := &p.buckets[buf.bucket]
	b.mu.Lock()
	if !p.dead.Load() && len(b.free) < p.retain {
		b.free = append(b.free, buf)
	}
	// Otherwise drop the block: the runtime garbage collector reclaims it.
	b.mu.Unlock()
	p.onRecycle()
}

// Close drops all free lists and fails subsequent allocations.
func (p *Table) Close() {
	if p.dead.Swap(true) {
		return
	}
	for i := range p.buckets {
		b := &p.buckets[i]
		b.mu.Lock()
		b.free = nil
		b.mu.Unlock()
	}
}

// Stats implements Allocator.
func (p *Table) Stats() Stats { return p.snapshot() }

// FreeBlocks reports the total free list population across buckets.
func (p *Table) FreeBlocks() int {
	n := 0
	for i := range p.buckets {
		b := &p.buckets[i]
		b.mu.Lock()
		n += len(b.free)
		b.mu.Unlock()
	}
	return n
}
