package pool

import (
	"fmt"
	"sort"
	"sync"
)

// Fixed is the original XDAQ allocation scheme: the pool is carved up front
// into a fixed population of blocks of a few sizes, and every allocation
// walks the block list first-fit under a single lock.  The paper's whitebox
// measurement attributes most of the peer transport processing time to this
// scheme ("most of the PT processing time is spent in the frame
// allocation"); it is kept faithful — including the linear scan — so the
// allocator ablation reproduces the effect.
type Fixed struct {
	counters
	mu     sync.Mutex
	blocks []*Buffer // all blocks, ordered by ascending size
	free   []bool    // free[i] reports whether blocks[i] is available
	closed bool
}

// FixedClass describes one block size class of a Fixed pool.
type FixedClass struct {
	Size  int // block size in bytes, at most MaxBlock
	Count int // number of blocks carved for this class
}

// DefaultFixedClasses is the carve-up used by executives unless configured
// otherwise: a spread from small control frames to the 256 KB maximum.
func DefaultFixedClasses() []FixedClass {
	return []FixedClass{
		{Size: 256, Count: 512},
		{Size: 1 << 10, Count: 256},
		{Size: 4 << 10, Count: 128},
		{Size: 16 << 10, Count: 64},
		{Size: 64 << 10, Count: 16},
		// Enough full-size blocks for a peer transport's posted receive
		// ring (32 by default) plus in-flight frames.
		{Size: MaxBlock, Count: 48},
	}
}

// NewFixed builds a Fixed pool from the given classes.  All memory is
// allocated immediately.
func NewFixed(classes []FixedClass) (*Fixed, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("pool: fixed pool needs at least one class")
	}
	p := &Fixed{}
	for _, c := range classes {
		if c.Size <= 0 || c.Size > MaxBlock {
			return nil, fmt.Errorf("pool: fixed class size %d out of range", c.Size)
		}
		if c.Count <= 0 {
			return nil, fmt.Errorf("pool: fixed class %d has count %d", c.Size, c.Count)
		}
		for i := 0; i < c.Count; i++ {
			p.blocks = append(p.blocks, &Buffer{data: make([]byte, c.Size), owner: p})
		}
	}
	sort.SliceStable(p.blocks, func(i, j int) bool {
		return cap(p.blocks[i].data) < cap(p.blocks[j].data)
	})
	p.free = make([]bool, len(p.blocks))
	for i, b := range p.blocks {
		b.bucket = i
		p.free[i] = true
	}
	return p, nil
}

// MustFixed is NewFixed for static configurations; it panics on error.
func MustFixed(classes []FixedClass) *Fixed {
	p, err := NewFixed(classes)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Allocator.
func (p *Fixed) Name() string { return "fixed" }

// Alloc implements Allocator with a first-fit scan over the block list.
func (p *Fixed) Alloc(n int) (*Buffer, error) {
	if n < 0 || n > MaxBlock {
		p.fails.Add(1)
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.fails.Add(1)
		return nil, ErrClosed
	}
	// The original scheme's deliberate weakness: a linear first-fit walk.
	// Blocks are sorted by size, so the first free block large enough is
	// also the tightest fit, but finding it costs a scan.
	for i, b := range p.blocks {
		if p.free[i] && cap(b.data) >= n {
			p.free[i] = false
			p.mu.Unlock()
			b.reset(n)
			p.onAlloc()
			return b, nil
		}
	}
	p.mu.Unlock()
	p.fails.Add(1)
	return nil, fmt.Errorf("%w: no free block of %d bytes", ErrExhausted, n)
}

func (p *Fixed) recycle(b *Buffer) {
	p.mu.Lock()
	p.free[b.bucket] = true
	p.mu.Unlock()
	p.onRecycle()
}

// Close marks the pool closed; subsequent Alloc calls fail.  Outstanding
// buffers may still be released.
func (p *Fixed) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}

// Stats implements Allocator.
func (p *Fixed) Stats() Stats { return p.snapshot() }

// FreeBlocks reports how many blocks are currently available, for tests and
// operational monitoring.
func (p *Fixed) FreeBlocks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.free {
		if f {
			n++
		}
	}
	return n
}
