// Package pool implements the executive-owned buffer pools that give XDAQ
// its zero-copy operation (§4 of the paper).
//
// All message payloads live in pool blocks.  Blocks are handed out with a
// reference count of one; transports and queues retain blocks while frames
// are in flight and release them after delivery, so blocks are recycled
// automatically once nobody references them anymore ("automatic garbage
// collection is provided, such that blocks are recycled if they are not
// referenced anymore").
//
// Two allocators are provided, matching the two schemes measured in the
// paper:
//
//   - Fixed: the original scheme, a pre-carved set of fixed-size blocks
//     searched first-fit under one lock.  The whitebox test showed most of
//     the peer transport processing time went into this allocation.
//   - Table: the optimized scheme, with on-demand block creation and a
//     table-based match from requested size to bucket, which cut the
//     framework overhead roughly in half (8.9 µs → 4.9 µs per call).
package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// MaxBlock is the largest single block the pools hand out: the paper fixes
// the maximum block length at 256 KB; longer payloads use scatter-gather
// lists (package sgl).
const MaxBlock = 256 << 10

// Errors returned by allocators.
var (
	// ErrTooLarge reports a request above MaxBlock.
	ErrTooLarge = errors.New("pool: request exceeds maximum block size")

	// ErrExhausted reports that a bounded pool has no free block able to
	// satisfy the request.
	ErrExhausted = errors.New("pool: exhausted")

	// ErrClosed reports an allocation from a closed pool.
	ErrClosed = errors.New("pool: closed")
)

// Allocator hands out reference-counted buffers.
type Allocator interface {
	// Alloc returns a buffer with at least n usable bytes (Bytes() has
	// length exactly n) and a reference count of one.
	Alloc(n int) (*Buffer, error)

	// Stats returns a snapshot of allocation counters.
	Stats() Stats

	// Name identifies the allocation scheme ("fixed" or "table").
	Name() string
}

// Stats is a snapshot of pool activity.
type Stats struct {
	Allocs    uint64 // successful allocations
	Fails     uint64 // failed allocations (exhaustion or oversize)
	Recycles  uint64 // blocks returned to a free list
	Grows     uint64 // blocks created on demand (table scheme only)
	InUse     int64  // blocks currently referenced
	HighWater int64  // maximum simultaneous blocks in use observed
}

func (s Stats) String() string {
	return fmt.Sprintf("allocs=%d fails=%d recycles=%d grows=%d inUse=%d high=%d",
		s.Allocs, s.Fails, s.Recycles, s.Grows, s.InUse, s.HighWater)
}

// counters is the shared atomic statistics block embedded by allocators.
type counters struct {
	allocs   atomic.Uint64
	fails    atomic.Uint64
	recycles atomic.Uint64
	grows    atomic.Uint64
	inUse    atomic.Int64
	high     atomic.Int64
}

func (c *counters) onAlloc() {
	c.allocs.Add(1)
	n := c.inUse.Add(1)
	for {
		h := c.high.Load()
		if n <= h || c.high.CompareAndSwap(h, n) {
			return
		}
	}
}

func (c *counters) onRecycle() {
	c.recycles.Add(1)
	c.inUse.Add(-1)
}

func (c *counters) snapshot() Stats {
	return Stats{
		Allocs:    c.allocs.Load(),
		Fails:     c.fails.Load(),
		Recycles:  c.recycles.Load(),
		Grows:     c.grows.Load(),
		InUse:     c.inUse.Load(),
		HighWater: c.high.Load(),
	}
}

// recycler is the pool-side interface a Buffer returns itself through.
type recycler interface {
	recycle(b *Buffer)
}

// Buffer is one reference-counted pool block.  The zero value is not
// usable; buffers come from an Allocator.
type Buffer struct {
	data   []byte // full block capacity
	length int    // requested (usable) length
	refs   atomic.Int32
	owner  recycler
	bucket int // owner-specific free list index
}

// Bytes returns the usable bytes of the block: length as requested from
// Alloc (or set by Resize), backed by the full block capacity.
func (b *Buffer) Bytes() []byte { return b.data[:b.length] }

// Len returns the usable length.
func (b *Buffer) Len() int { return b.length }

// Cap returns the full block capacity.
func (b *Buffer) Cap() int { return cap(b.data) }

// Resize changes the usable length within the block capacity.  It is used
// when a frame is filled incrementally (receive paths allocate at block
// granularity, then shrink to the actual message size).
func (b *Buffer) Resize(n int) error {
	if n < 0 || n > cap(b.data) {
		return fmt.Errorf("pool: resize to %d outside block capacity %d", n, cap(b.data))
	}
	b.length = n
	return nil
}

// Refs returns the current reference count; primarily for tests and leak
// diagnostics.
func (b *Buffer) Refs() int { return int(b.refs.Load()) }

// Retain increments the reference count.  It panics on a recycled buffer:
// retaining after free is always a bug in the caller.
func (b *Buffer) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("pool: Retain on released buffer")
	}
}

// Release decrements the reference count and recycles the block to its pool
// when it reaches zero.  Further use of the buffer after the final release
// is a bug; double-release panics.
func (b *Buffer) Release() {
	n := b.refs.Add(-1)
	switch {
	case n == 0:
		b.owner.recycle(b)
	case n < 0:
		panic("pool: Release of unreferenced buffer")
	}
}

// reset prepares a recycled block for hand-out.
func (b *Buffer) reset(length int) {
	b.length = length
	b.refs.Store(1)
}
