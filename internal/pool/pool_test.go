package pool

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// allocators under test, freshly constructed per case.
func testAllocators(t *testing.T) map[string]Allocator {
	t.Helper()
	fixed, err := NewFixed(DefaultFixedClasses())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Allocator{
		"fixed": fixed,
		"table": NewTable(0),
	}
}

func TestAllocBasic(t *testing.T) {
	for name, a := range testAllocators(t) {
		t.Run(name, func(t *testing.T) {
			b, err := a.Alloc(100)
			if err != nil {
				t.Fatalf("Alloc: %v", err)
			}
			if b.Len() != 100 || len(b.Bytes()) != 100 {
				t.Fatalf("Len=%d len(Bytes)=%d", b.Len(), len(b.Bytes()))
			}
			if b.Cap() < 100 {
				t.Fatalf("Cap=%d < requested", b.Cap())
			}
			if b.Refs() != 1 {
				t.Fatalf("fresh buffer refs=%d", b.Refs())
			}
			// The block must be writable over its full requested length.
			for i := range b.Bytes() {
				b.Bytes()[i] = byte(i)
			}
			b.Release()
			s := a.Stats()
			if s.Allocs != 1 || s.Recycles != 1 || s.InUse != 0 {
				t.Fatalf("stats after release: %v", s)
			}
		})
	}
}

func TestAllocZeroAndMax(t *testing.T) {
	for name, a := range testAllocators(t) {
		t.Run(name, func(t *testing.T) {
			z, err := a.Alloc(0)
			if err != nil {
				t.Fatalf("Alloc(0): %v", err)
			}
			if z.Len() != 0 {
				t.Fatalf("Alloc(0).Len = %d", z.Len())
			}
			z.Release()

			m, err := a.Alloc(MaxBlock)
			if err != nil {
				t.Fatalf("Alloc(MaxBlock): %v", err)
			}
			if m.Len() != MaxBlock {
				t.Fatalf("max Len = %d", m.Len())
			}
			m.Release()

			if _, err := a.Alloc(MaxBlock + 1); !errors.Is(err, ErrTooLarge) {
				t.Fatalf("oversize: %v", err)
			}
			if _, err := a.Alloc(-1); !errors.Is(err, ErrTooLarge) {
				t.Fatalf("negative: %v", err)
			}
		})
	}
}

func TestRecyclingReusesBlocks(t *testing.T) {
	for name, a := range testAllocators(t) {
		t.Run(name, func(t *testing.T) {
			b1, err := a.Alloc(1024)
			if err != nil {
				t.Fatal(err)
			}
			p1 := &b1.Bytes()[0]
			b1.Release()
			b2, err := a.Alloc(1024)
			if err != nil {
				t.Fatal(err)
			}
			if &b2.Bytes()[0] != p1 {
				t.Fatal("released block was not recycled for an identical request")
			}
			b2.Release()
		})
	}
}

func TestRetainRelease(t *testing.T) {
	for name, a := range testAllocators(t) {
		t.Run(name, func(t *testing.T) {
			b, err := a.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			b.Retain()
			b.Retain()
			if b.Refs() != 3 {
				t.Fatalf("refs = %d", b.Refs())
			}
			b.Release()
			b.Release()
			if a.Stats().InUse != 1 {
				t.Fatal("buffer recycled while still referenced")
			}
			b.Release()
			if a.Stats().InUse != 0 {
				t.Fatal("final release did not recycle")
			}
		})
	}
}

func TestReleasePanics(t *testing.T) {
	for name, a := range testAllocators(t) {
		t.Run(name, func(t *testing.T) {
			b, err := a.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			b.Release()
			mustPanic(t, "double release", func() { b.Release() })
		})
	}
}

func TestRetainAfterReleasePanics(t *testing.T) {
	// Use a detached buffer so the recycled block is not handed out again
	// (a recycled-and-reallocated block legitimately accepts Retain).
	a := NewTable(0)
	b, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	mustPanic(t, "retain after release", func() { b.Retain() })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

func TestResize(t *testing.T) {
	a := NewTable(0)
	b, err := a.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Resize(b.Cap()); err != nil {
		t.Fatalf("Resize to cap: %v", err)
	}
	if len(b.Bytes()) != b.Cap() {
		t.Fatal("Resize did not extend Bytes")
	}
	if err := b.Resize(b.Cap() + 1); err == nil {
		t.Fatal("Resize beyond cap succeeded")
	}
	if err := b.Resize(-1); err == nil {
		t.Fatal("negative Resize succeeded")
	}
	b.Release()
}

func TestFixedExhaustion(t *testing.T) {
	p, err := NewFixed([]FixedClass{{Size: 128, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(100); !errors.Is(err, ErrExhausted) {
		t.Fatalf("third alloc: %v", err)
	}
	if p.FreeBlocks() != 0 {
		t.Fatalf("FreeBlocks = %d", p.FreeBlocks())
	}
	b1.Release()
	if _, err := p.Alloc(100); err != nil {
		t.Fatalf("alloc after release: %v", err)
	}
	b2.Release()
}

func TestFixedFirstFitPicksSmallestClass(t *testing.T) {
	p, err := NewFixed([]FixedClass{
		{Size: 4096, Count: 1},
		{Size: 64, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cap() != 64 {
		t.Fatalf("first fit chose %d-byte block for 10-byte request", b.Cap())
	}
	b.Release()
}

func TestFixedConfigValidation(t *testing.T) {
	cases := [][]FixedClass{
		nil,
		{{Size: 0, Count: 1}},
		{{Size: MaxBlock + 1, Count: 1}},
		{{Size: 64, Count: 0}},
	}
	for i, c := range cases {
		if _, err := NewFixed(c); err == nil {
			t.Errorf("case %d: NewFixed accepted bad config", i)
		}
	}
	mustPanic(t, "MustFixed", func() { MustFixed(nil) })
}

func TestFixedClose(t *testing.T) {
	p := MustFixed([]FixedClass{{Size: 64, Count: 1}})
	b, err := p.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Alloc(10); !errors.Is(err, ErrClosed) {
		t.Fatalf("alloc after close: %v", err)
	}
	b.Release() // releasing into a closed pool must not panic
}

func TestTableBucketSizes(t *testing.T) {
	cases := []struct{ req, want int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {128, 128},
		{129, 256}, {4096, 4096}, {4097, 8192},
		{MaxBlock - 1, MaxBlock}, {MaxBlock, MaxBlock},
	}
	for _, c := range cases {
		got, err := BucketSize(c.req)
		if err != nil || got != c.want {
			t.Errorf("BucketSize(%d) = %d, %v; want %d", c.req, got, err, c.want)
		}
	}
	if _, err := BucketSize(MaxBlock + 1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("BucketSize oversize: %v", err)
	}
}

func TestTableRetainBound(t *testing.T) {
	p := NewTable(2)
	bufs := make([]*Buffer, 5)
	for i := range bufs {
		b, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = b
	}
	for _, b := range bufs {
		b.Release()
	}
	if p.FreeBlocks() != 2 {
		t.Fatalf("free list kept %d blocks, retain is 2", p.FreeBlocks())
	}
}

func TestTableClose(t *testing.T) {
	p := NewTable(0)
	b, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.Alloc(64); !errors.Is(err, ErrClosed) {
		t.Fatalf("alloc after close: %v", err)
	}
	b.Release()
	if p.FreeBlocks() != 0 {
		t.Fatal("closed pool retained a released block")
	}
}

func TestHighWaterMark(t *testing.T) {
	p := NewTable(0)
	var bufs []*Buffer
	for i := 0; i < 7; i++ {
		b, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	for _, b := range bufs {
		b.Release()
	}
	if got := p.Stats().HighWater; got != 7 {
		t.Fatalf("HighWater = %d, want 7", got)
	}
}

func TestConcurrentAllocRelease(t *testing.T) {
	for name, a := range testAllocators(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for i := 0; i < 500; i++ {
						b, err := a.Alloc(r.Intn(4096))
						if err != nil {
							continue // fixed pool may transiently exhaust
						}
						if r.Intn(2) == 0 {
							b.Retain()
							b.Release()
						}
						b.Release()
					}
				}(int64(g))
			}
			wg.Wait()
			if in := a.Stats().InUse; in != 0 {
				t.Fatalf("leak: %d blocks in use after workload", in)
			}
		})
	}
}

func TestQuickBucketSizeInvariants(t *testing.T) {
	f := func(n uint32) bool {
		req := int(n % (MaxBlock + 1))
		got, err := BucketSize(req)
		if err != nil {
			return false
		}
		// The bucket must hold the request, be a power of two, and be at
		// most one doubling above it (no gross waste).
		if got < req || got&(got-1) != 0 {
			return false
		}
		return req <= minBucketSize || got < 2*req
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllocLenMatchesRequest(t *testing.T) {
	p := NewTable(0)
	f := func(n uint32) bool {
		req := int(n % (MaxBlock + 1))
		b, err := p.Alloc(req)
		if err != nil {
			return false
		}
		ok := b.Len() == req && len(b.Bytes()) == req && b.Cap() >= req
		b.Release()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
