// Package rmi implements the remote-method-invocation adapters of §4:
// "To further shield users from these details, adapters can be provided
// that allow a remote method invocation style communication scheme.  The
// stub part will take the call parameters and marshal them into a standard
// message, whereas the skeleton part scans the message and provides typed
// pointers to its contents."
//
// The marshalling is deliberately minimal — fixed-width little-endian
// primitives and length-prefixed strings — because a key argument of the
// paper is that heavyweight, general marshalling engines (CORBA ORBs) are
// what costs middleware its efficiency.
package rmi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports a decode past the end of the argument buffer.
var ErrTruncated = errors.New("rmi: truncated arguments")

// ErrTrailing reports undecoded bytes left after Finish.
var ErrTrailing = errors.New("rmi: trailing bytes after arguments")

// Encoder marshals call parameters into a frame payload.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with optional preallocated capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) Byte(v byte)     { e.buf = append(e.buf, v) }
func (e *Encoder) Bool(v bool)     { e.Byte(boolByte(v)) }
func (e *Encoder) Uint16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *Encoder) Uint32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *Encoder) Uint64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) Int16(v int16)   { e.Uint16(uint16(v)) }
func (e *Encoder) Int32(v int32)   { e.Uint32(uint32(v)) }
func (e *Encoder) Int64(v int64)   { e.Uint64(uint64(v)) }
func (e *Encoder) Float32(v float32) {
	e.Uint32(math.Float32bits(v))
}
func (e *Encoder) Float64(v float64) {
	e.Uint64(math.Float64bits(v))
}

// String writes a uint32-length-prefixed UTF-8 string.
func (e *Encoder) String(v string) {
	e.Uint32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Bytes32 writes a uint32-length-prefixed byte slice.
func (e *Encoder) Bytes32(v []byte) {
	e.Uint32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Float64s writes a counted slice of float64 values.
func (e *Encoder) Float64s(v []float64) {
	e.Uint32(uint32(len(v)))
	for _, f := range v {
		e.Float64(f)
	}
}

// Int64s writes a counted slice of int64 values.
func (e *Encoder) Int64s(v []int64) {
	e.Uint32(uint32(len(v)))
	for _, n := range v {
		e.Int64(n)
	}
}

// Strings writes a counted slice of strings.
func (e *Encoder) Strings(v []string) {
	e.Uint32(uint32(len(v)))
	for _, s := range v {
		e.String(s)
	}
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// Decoder unmarshals call parameters from a frame payload.  Decoding
// methods record the first error; check Err (or Finish) once at the end
// rather than after every read — the skeleton does this for handlers.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder reads from payload (which is aliased, not copied).
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish fails if a decode error occurred or bytes remain unread.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.err = fmt.Errorf("%w: want %d, have %d", ErrTruncated, n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) Byte() byte {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *Decoder) Bool() bool { return d.Byte() != 0 }

func (d *Decoder) Uint16() uint16 {
	if b := d.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (d *Decoder) Uint32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *Decoder) Uint64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *Decoder) Int16() int16     { return int16(d.Uint16()) }
func (d *Decoder) Int32() int32     { return int32(d.Uint32()) }
func (d *Decoder) Int64() int64     { return int64(d.Uint64()) }
func (d *Decoder) Float32() float32 { return math.Float32frombits(d.Uint32()) }
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// String reads a uint32-length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.Uint32())
	if b := d.take(n); b != nil {
		return string(b)
	}
	return ""
}

// Bytes32 reads a uint32-length-prefixed byte slice, aliasing the payload.
func (d *Decoder) Bytes32() []byte {
	n := int(d.Uint32())
	return d.take(n)
}

// Float64s reads a counted slice of float64 values.
func (d *Decoder) Float64s() []float64 {
	n := int(d.Uint32())
	if d.err != nil || n < 0 || d.Remaining() < 8*n {
		if d.err == nil {
			d.err = fmt.Errorf("%w: float64 slice of %d", ErrTruncated, n)
		}
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Float64()
	}
	return out
}

// Int64s reads a counted slice of int64 values.
func (d *Decoder) Int64s() []int64 {
	n := int(d.Uint32())
	if d.err != nil || n < 0 || d.Remaining() < 8*n {
		if d.err == nil {
			d.err = fmt.Errorf("%w: int64 slice of %d", ErrTruncated, n)
		}
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Int64()
	}
	return out
}

// Strings reads a counted slice of strings.
func (d *Decoder) Strings() []string {
	n := int(d.Uint32())
	if d.err != nil || n < 0 || d.Remaining() < n {
		if d.err == nil {
			d.err = fmt.Errorf("%w: string slice of %d", ErrTruncated, n)
		}
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String())
	}
	if d.err != nil {
		return nil
	}
	return out
}
