package rmi

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
)

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.Bool(true)
	e.Byte(0xAB)
	e.Int16(-12345)
	e.Uint16(54321)
	e.Int32(-7)
	e.Uint32(7)
	e.Int64(math.MinInt64)
	e.Uint64(math.MaxUint64)
	e.Float32(1.5)
	e.Float64(-2.25)
	e.String("hello")
	e.Bytes32([]byte{1, 2, 3})
	e.Float64s([]float64{0.5, 1.5})
	e.Int64s([]int64{-1, 2, -3})
	e.Strings([]string{"a", "", "ccc"})

	d := NewDecoder(e.Bytes())
	if !d.Bool() || d.Byte() != 0xAB || d.Int16() != -12345 || d.Uint16() != 54321 {
		t.Fatal("scalar mismatch")
	}
	if d.Int32() != -7 || d.Uint32() != 7 || d.Int64() != math.MinInt64 || d.Uint64() != math.MaxUint64 {
		t.Fatal("integer mismatch")
	}
	if d.Float32() != 1.5 || d.Float64() != -2.25 {
		t.Fatal("float mismatch")
	}
	if d.String() != "hello" || !bytes.Equal(d.Bytes32(), []byte{1, 2, 3}) {
		t.Fatal("string/bytes mismatch")
	}
	if !reflect.DeepEqual(d.Float64s(), []float64{0.5, 1.5}) {
		t.Fatal("float64s")
	}
	if !reflect.DeepEqual(d.Int64s(), []int64{-1, 2, -3}) {
		t.Fatal("int64s")
	}
	if !reflect.DeepEqual(d.Strings(), []string{"a", "", "ccc"}) {
		t.Fatal("strings")
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderTruncation(t *testing.T) {
	e := NewEncoder(0)
	e.String("truncate me")
	full := e.Bytes()
	for i := 0; i < len(full); i++ {
		d := NewDecoder(full[:i])
		_ = d.String()
		if d.Err() == nil {
			t.Fatalf("prefix %d decoded", i)
		}
		// Errors are sticky: further reads return zero values.
		if d.Uint64() != 0 || d.Bool() {
			t.Fatal("post-error reads not zero")
		}
	}
}

func TestDecoderTrailing(t *testing.T) {
	e := NewEncoder(0)
	e.Uint32(1)
	e.Uint32(2)
	d := NewDecoder(e.Bytes())
	d.Uint32()
	if err := d.Finish(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("finish: %v", err)
	}
}

func TestSliceLengthBombs(t *testing.T) {
	// A hostile length prefix must not allocate unboundedly or panic.
	e := NewEncoder(0)
	e.Uint32(math.MaxUint32)
	for _, read := range []func(*Decoder){
		func(d *Decoder) { d.Float64s() },
		func(d *Decoder) { d.Int64s() },
		func(d *Decoder) { d.Strings() },
		func(d *Decoder) { d.Bytes32() },
		func(d *Decoder) { _ = d.String() },
	} {
		d := NewDecoder(e.Bytes())
		read(d)
		if d.Err() == nil {
			t.Fatal("length bomb decoded")
		}
	}
}

func TestQuickCodecScalars(t *testing.T) {
	f := func(b bool, u8 byte, i16 int16, u32 uint32, i64 int64, f64 float64, s string, raw []byte) bool {
		if math.IsNaN(f64) {
			return true
		}
		e := NewEncoder(0)
		e.Bool(b)
		e.Byte(u8)
		e.Int16(i16)
		e.Uint32(u32)
		e.Int64(i64)
		e.Float64(f64)
		e.String(s)
		e.Bytes32(raw)
		d := NewDecoder(e.Bytes())
		ok := d.Bool() == b && d.Byte() == u8 && d.Int16() == i16 &&
			d.Uint32() == u32 && d.Int64() == i64 && d.Float64() == f64 &&
			d.String() == s && bytes.Equal(d.Bytes32(), raw)
		return ok && d.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(junk []byte, seed int64) bool {
		d := NewDecoder(junk)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			switch r.Intn(10) {
			case 0:
				d.Bool()
			case 1:
				d.Byte()
			case 2:
				d.Uint16()
			case 3:
				d.Uint32()
			case 4:
				d.Uint64()
			case 5:
				d.Float64()
			case 6:
				_ = d.String()
			case 7:
				d.Bytes32()
			case 8:
				d.Float64s()
			case 9:
				d.Strings()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// calculator is the classic RMI demo service.
func calculatorSkeleton() *Skeleton {
	k := NewSkeleton(device.New("calculator", 0))
	k.Handle(1, func(args *Decoder, result *Encoder) error { // add
		a, b := args.Float64(), args.Float64()
		result.Float64(a + b)
		return nil
	})
	k.Handle(2, func(args *Decoder, result *Encoder) error { // sum
		vals := args.Float64s()
		total := 0.0
		for _, v := range vals {
			total += v
		}
		result.Float64(total)
		return nil
	})
	k.Handle(3, func(args *Decoder, result *Encoder) error { // div
		a, b := args.Float64(), args.Float64()
		if b == 0 {
			return errors.New("division by zero")
		}
		result.Float64(a / b)
		return nil
	})
	return k
}

func newExecWithCalc(t *testing.T) (*executive.Executive, i2o.TID) {
	t.Helper()
	e := executive.New(executive.Options{
		Name: "rmi", Node: 1,
		RequestTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	})
	t.Cleanup(e.Close)
	id, err := e.Plug(calculatorSkeleton().Device())
	if err != nil {
		t.Fatal(err)
	}
	return e, id
}

func TestStubSkeletonInvoke(t *testing.T) {
	e, id := newExecWithCalc(t)
	stub := NewStub(e, id)
	var sum float64
	err := stub.Invoke(1,
		func(enc *Encoder) { enc.Float64(2.5); enc.Float64(4.0) },
		func(dec *Decoder) error { sum = dec.Float64(); return nil },
	)
	if err != nil || sum != 6.5 {
		t.Fatalf("add: %v sum=%v", err, sum)
	}
	err = stub.Invoke(2,
		func(enc *Encoder) { enc.Float64s([]float64{1, 2, 3, 4}) },
		func(dec *Decoder) error { sum = dec.Float64(); return nil },
	)
	if err != nil || sum != 10 {
		t.Fatalf("sum: %v sum=%v", err, sum)
	}
}

func TestStubApplicationError(t *testing.T) {
	e, id := newExecWithCalc(t)
	stub := NewStub(e, id)
	err := stub.Invoke(3,
		func(enc *Encoder) { enc.Float64(1); enc.Float64(0) },
		func(*Decoder) error { return nil },
	)
	var rec *i2o.FailRecord
	if !errors.As(err, &rec) || rec.Code != i2o.FailApplication {
		t.Fatalf("div by zero: %v", err)
	}
}

func TestSkeletonRejectsExtraArgs(t *testing.T) {
	e, id := newExecWithCalc(t)
	stub := NewStub(e, id)
	err := stub.Invoke(1,
		func(enc *Encoder) { enc.Float64(1); enc.Float64(2); enc.Float64(3) },
		nil,
	)
	if err == nil {
		t.Fatal("extra argument accepted")
	}
}

func TestStubVoidCall(t *testing.T) {
	e := executive.New(executive.Options{
		Name: "rmi", Node: 1, RequestTimeout: 2 * time.Second,
		Logf: func(string, ...any) {},
	})
	defer e.Close()
	k := NewSkeleton(device.New("void", 0))
	called := make(chan struct{}, 2)
	k.Handle(1, func(args *Decoder, result *Encoder) error {
		called <- struct{}{}
		return nil
	})
	id, err := e.Plug(k.Device())
	if err != nil {
		t.Fatal(err)
	}
	stub := NewStub(e, id)
	if err := stub.Invoke(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	<-called
	if err := stub.Notify(1, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-called:
	case <-time.After(time.Second):
		t.Fatal("notify never arrived")
	}
}

func TestStubConfig(t *testing.T) {
	e, id := newExecWithCalc(t)
	stub := NewStub(e, id)
	stub.SetPriority(i2o.PriorityUrgent)
	stub.SetInitiator(i2o.TIDExecutive)
	stub.SetOrg(i2o.OrgXDAQ)
	var out float64
	if err := stub.Invoke(1,
		func(enc *Encoder) { enc.Float64(1); enc.Float64(1) },
		func(dec *Decoder) error { out = dec.Float64(); return nil },
	); err != nil || out != 2 {
		t.Fatalf("%v %v", err, out)
	}
}
