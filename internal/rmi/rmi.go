package rmi

import (
	"fmt"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// Stub is the client-side adapter: it marshals typed call parameters into
// private I2O frames and unmarshals typed results from the replies, hiding
// frameSend and the frame format from the caller.
type Stub struct {
	host      device.Host
	target    i2o.TID
	initiator i2o.TID
	org       i2o.OrgID
	priority  i2o.Priority
}

// NewStub builds a stub calling the device at target through host (an
// executive, or any device.Host).  Calls originate from the executive TiD
// unless SetInitiator overrides it.
func NewStub(host device.Host, target i2o.TID) *Stub {
	return &Stub{
		host:      host,
		target:    target,
		initiator: i2o.TIDExecutive,
		org:       i2o.OrgXDAQ,
		priority:  i2o.PriorityDefault,
	}
}

// SetInitiator changes the TiD replies are routed back to.
func (s *Stub) SetInitiator(id i2o.TID) { s.initiator = id }

// SetPriority changes the scheduling priority of calls.
func (s *Stub) SetPriority(p i2o.Priority) { s.priority = p }

// SetOrg changes the organization ID of the private frames.
func (s *Stub) SetOrg(org i2o.OrgID) { s.org = org }

// Invoke performs a synchronous call: marshal writes the parameters,
// unmarshal reads the result.  Either may be nil for void argument or
// result lists.  The decoder passed to unmarshal is checked with Finish
// afterwards, so handlers that leave trailing bytes are caught.
func (s *Stub) Invoke(xfunc uint16, marshal func(*Encoder), unmarshal func(*Decoder) error) error {
	m := s.message(xfunc, marshal)
	rep, err := s.host.Request(m)
	if err != nil {
		return err
	}
	defer rep.Release()
	if unmarshal == nil {
		return nil
	}
	d := NewDecoder(rep.Payload)
	if err := unmarshal(d); err != nil {
		return err
	}
	return d.Finish()
}

// Notify performs a one-way call: parameters are marshalled and sent with
// no reply expected.
func (s *Stub) Notify(xfunc uint16, marshal func(*Encoder)) error {
	return s.host.Send(s.message(xfunc, marshal))
}

func (s *Stub) message(xfunc uint16, marshal func(*Encoder)) *i2o.Message {
	var payload []byte
	if marshal != nil {
		e := NewEncoder(64)
		marshal(e)
		payload = e.Bytes()
	}
	return &i2o.Message{
		Priority:  s.priority,
		Target:    s.target,
		Initiator: s.initiator,
		Function:  i2o.FuncPrivate,
		Org:       s.org,
		XFunction: xfunc,
		Payload:   payload,
	}
}

// Method is a skeleton-side procedure: args provides typed access to the
// call parameters, result collects the reply values.
type Method func(args *Decoder, result *Encoder) error

// Skeleton binds methods onto a device: each registered method becomes a
// private-message handler that scans the frame and provides typed access
// to its contents.
type Skeleton struct {
	dev *device.Device
}

// NewSkeleton wraps a device.
func NewSkeleton(dev *device.Device) *Skeleton { return &Skeleton{dev: dev} }

// Device returns the underlying device for plugging.
func (k *Skeleton) Device() *device.Device { return k.dev }

// Handle registers a method under the given extended function code.
func (k *Skeleton) Handle(xfunc uint16, fn Method) {
	k.dev.Bind(xfunc, func(ctx *device.Context, m *i2o.Message) error {
		args := NewDecoder(m.Payload)
		result := NewEncoder(64)
		if err := fn(args, result); err != nil {
			return err
		}
		if err := args.Finish(); err != nil {
			return fmt.Errorf("rmi: method %#04x: %w", xfunc, err)
		}
		return device.ReplyIfExpected(ctx, m, result.Bytes())
	})
}
