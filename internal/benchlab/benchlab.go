// Package benchlab builds the measurement rigs for reproducing the
// paper's evaluation (§5): the blackbox ping-pong of figure 6, the
// whitebox breakdown of Table 1, the allocator ablation, and the
// comparisons and design ablations indexed in DESIGN.md.  Both the
// testing.B benchmarks in the repository root and the cmd/benchtab
// report generator drive these rigs.
package benchlab

import (
	"fmt"
	"sort"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/probe"
	"xdaq/internal/pta"
	"xdaq/internal/transport/gm"
)

// EchoXFunc is the private function code of the benchmark echo device.
const EchoXFunc uint16 = 1

// Fig6Payloads are the payload sizes swept in figure 6 (1 B to 4096 B).
var Fig6Payloads = []int{1, 64, 256, 512, 1024, 1536, 2048, 2560, 3072, 3584, 4096}

// NewEchoDevice returns the paper's benchmark responder: it replies to
// each received message with exactly the same content, zero-copy (the
// reply payload is a fresh pool block so it can cross the wire while the
// request frame is released).
func NewEchoDevice(instance int) *device.Device {
	d := device.New("echo", instance)
	d.Bind(EchoXFunc, func(ctx *device.Context, m *i2o.Message) error {
		if !m.Flags.Has(i2o.FlagReplyExpected) {
			return nil
		}
		buf, err := ctx.Host.Alloc(len(m.Payload))
		if err != nil {
			return err
		}
		copy(buf.Bytes(), m.Payload)
		rep := i2o.NewReply(m)
		rep.Payload = buf.Bytes()
		rep.AttachBuffer(buf)
		return ctx.Host.Send(rep)
	})
	return d
}

// RigConfig configures a two-node XDAQ-over-GM rig.
type RigConfig struct {
	// Allocator is "table" (default) or "fixed" — the §5 ablation knob.
	Allocator string

	// Mode is the PT operation mode (task by default).
	Mode pta.Mode

	// Probes collects whitebox samples (probe.Default when nil).
	Probes *probe.Registry

	// Provide is the receive-block count per PT (default 32).
	Provide int

	// Bandwidth overrides the modelled link speed in bytes per second
	// (gm.DefaultBandwidth when 0).
	Bandwidth float64
}

// Rig is two executives joined by the simulated Myrinet fabric, with an
// echo device on node B and a proxy for it on node A.
type Rig struct {
	A, B      *executive.Executive
	AgentA    *pta.Agent
	AgentB    *pta.Agent
	Echo      i2o.TID // proxy TiD on A for the echo device on B
	LocalEcho i2o.TID // echo device plugged on A, for loop-local runs
}

func newAllocator(name string) (pool.Allocator, error) {
	switch name {
	case "", "table":
		return pool.NewTable(0), nil
	case "fixed":
		return pool.NewFixed(pool.DefaultFixedClasses())
	default:
		return nil, fmt.Errorf("benchlab: unknown allocator %q", name)
	}
}

// NewGMRig builds the figure-6 rig.
func NewGMRig(cfg RigConfig) (*Rig, error) {
	if cfg.Probes == nil {
		cfg.Probes = probe.Default
	}
	fabric := gm.NewFabric()
	if cfg.Bandwidth > 0 {
		fabric.SetBandwidth(cfg.Bandwidth)
	}
	routes := map[i2o.NodeID]gm.Port{1: 1, 2: 2}

	build := func(id i2o.NodeID, name string) (*executive.Executive, *pta.Agent, error) {
		alloc, err := newAllocator(cfg.Allocator)
		if err != nil {
			return nil, nil, err
		}
		e := executive.New(executive.Options{
			Name: name, Node: id,
			Allocator:      alloc,
			RequestTimeout: 10 * time.Second,
			Probes:         cfg.Probes,
			Logf:           func(string, ...any) {},
		})
		nic, err := fabric.Open(routes[id])
		if err != nil {
			e.Close()
			return nil, nil, err
		}
		tr, err := gm.NewTransport(nic, e.Allocator(), gm.Config{
			Routes: routes, Provide: cfg.Provide, Probes: cfg.Probes,
		})
		if err != nil {
			e.Close()
			return nil, nil, err
		}
		agent, err := pta.New(e)
		if err != nil {
			e.Close()
			return nil, nil, err
		}
		if err := agent.Register(tr, cfg.Mode); err != nil {
			agent.Close()
			e.Close()
			return nil, nil, err
		}
		e.SetRoute(1, gm.PTName)
		e.SetRoute(2, gm.PTName)
		return e, agent, nil
	}

	a, agentA, err := build(1, "bench-a")
	if err != nil {
		return nil, err
	}
	b, agentB, err := build(2, "bench-b")
	if err != nil {
		agentA.Close()
		a.Close()
		return nil, err
	}
	r := &Rig{A: a, B: b, AgentA: agentA, AgentB: agentB}

	if _, err := b.Plug(NewEchoDevice(0)); err != nil {
		r.Close()
		return nil, err
	}
	localEcho, err := a.Plug(NewEchoDevice(1))
	if err != nil {
		r.Close()
		return nil, err
	}
	r.LocalEcho = localEcho
	echo, err := a.Discover(2, "echo", 0)
	if err != nil {
		r.Close()
		return nil, err
	}
	r.Echo = echo
	return r, nil
}

// Close shuts the rig down.
func (r *Rig) Close() {
	r.AgentA.Close()
	r.AgentB.Close()
	r.A.Close()
	r.B.Close()
}

// RoundTrip performs one echo request of the given payload size through
// the full framework path and releases the reply.
func (r *Rig) RoundTrip(target i2o.TID, size int) error {
	m, err := r.A.AllocMessage(size)
	if err != nil {
		return err
	}
	m.Target = target
	m.Initiator = i2o.TIDExecutive
	m.XFunction = EchoXFunc
	rep, err := r.A.Request(m)
	if err != nil {
		return err
	}
	if len(rep.Payload) != size {
		rep.Release()
		return fmt.Errorf("benchlab: echo returned %d bytes, want %d", len(rep.Payload), size)
	}
	rep.Release()
	return nil
}

// MeasureXDAQ runs iters round trips of the given payload size and
// returns the median one-way latency (round trip / 2).  Medians keep
// garbage-collection and scheduler outliers from skewing the series, in
// the spirit of the paper's median-based whitebox methodology.
func (r *Rig) MeasureXDAQ(size, iters int) (time.Duration, error) {
	// Warm the path (route discovery, pool growth).
	for i := 0; i < 32; i++ {
		if err := r.RoundTrip(r.Echo, size); err != nil {
			return 0, err
		}
	}
	samples := make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := r.RoundTrip(r.Echo, size); err != nil {
			return 0, err
		}
		samples[i] = time.Since(t0)
	}
	return median(samples) / 2, nil
}

// median sorts in place and returns the midpoint.
func median(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	n := len(samples)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return samples[n/2]
	}
	return (samples[n/2-1] + samples[n/2]) / 2
}

// GMDirect is the baseline of figure 6: the same fabric used directly,
// with no framework in the path.  Node B's goroutine echoes every message
// back and re-provides its receive buffer, as a raw GM test program
// would.
type GMDirect struct {
	a, b *gm.NIC
	done chan struct{}
}

// NewGMDirect builds the direct rig.
func NewGMDirect() (*GMDirect, error) {
	fabric := gm.NewFabric()
	a, err := fabric.Open(1)
	if err != nil {
		return nil, err
	}
	b, err := fabric.Open(2)
	if err != nil {
		a.Close()
		return nil, err
	}
	for i := 0; i < 32; i++ {
		if err := a.Provide(make([]byte, gm.MTU), nil); err != nil {
			return nil, err
		}
		if err := b.Provide(make([]byte, gm.MTU), nil); err != nil {
			return nil, err
		}
	}
	d := &GMDirect{a: a, b: b, done: make(chan struct{})}
	go func() {
		defer close(d.done)
		for {
			r, ok := b.Receive()
			if !ok {
				return
			}
			if err := b.Send(1, r.Buf[:r.N]); err != nil {
				return
			}
			_ = b.Provide(r.Buf, nil)
		}
	}()
	return d, nil
}

// RoundTrip sends one payload and waits for the echo.
func (d *GMDirect) RoundTrip(payload []byte) error {
	if err := d.a.Send(2, payload); err != nil {
		return err
	}
	r, ok := d.a.Receive()
	if !ok {
		return fmt.Errorf("benchlab: direct GM receive failed")
	}
	if r.N != len(payload) {
		return fmt.Errorf("benchlab: direct echo %d bytes, want %d", r.N, len(payload))
	}
	return d.a.Provide(r.Buf, nil)
}

// Measure runs iters round trips and returns the median one-way latency.
func (d *GMDirect) Measure(size, iters int) (time.Duration, error) {
	payload := make([]byte, size)
	for i := 0; i < 32; i++ {
		if err := d.RoundTrip(payload); err != nil {
			return 0, err
		}
	}
	samples := make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := d.RoundTrip(payload); err != nil {
			return 0, err
		}
		samples[i] = time.Since(t0)
	}
	return median(samples) / 2, nil
}

// Close shuts the direct rig down.
func (d *GMDirect) Close() {
	d.a.Close()
	d.b.Close()
	<-d.done
}

// Point is one (payload size, one-way latency) sample of a latency series.
type Point struct {
	Bytes  int
	OneWay time.Duration
}

// Fit computes the least-squares line latency = Slope*bytes + Intercept
// over a series, in microseconds, mirroring the linear fits of figure 6.
type Fit struct {
	Slope     float64 // µs per byte
	Intercept float64 // µs
}

// FitSeries fits a line through the points.
func FitSeries(points []Point) Fit {
	n := float64(len(points))
	if n == 0 {
		return Fit{}
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		x := float64(p.Bytes)
		y := float64(p.OneWay) / float64(time.Microsecond)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{Intercept: sy / n}
	}
	slope := (n*sxy - sx*sy) / den
	return Fit{Slope: slope, Intercept: (sy - slope*sx) / n}
}
