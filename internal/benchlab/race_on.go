//go:build race

package benchlab

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation distorts relative timings, so shape assertions are
// skipped under -race.
const raceEnabled = true
