//go:build !race

package benchlab

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
