package benchlab

import (
	"testing"
	"time"

	"xdaq/internal/i2o"
)

// The experiment runners are exercised with tiny iteration counts: these
// tests validate plumbing and result shape, not statistics (cmd/benchtab
// and the root benchmarks run the full sizes).

func TestRunFig6Shape(t *testing.T) {
	res, err := RunFig6(40, "table")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.XDAQ) != len(Fig6Payloads) || len(res.Direct) != len(Fig6Payloads) {
		t.Fatalf("series lengths %d/%d", len(res.XDAQ), len(res.Direct))
	}
	// The framework path must cost more than the raw fabric at every
	// payload size, and the latency must grow with payload.
	for i := range res.XDAQ {
		if res.XDAQ[i].OneWay <= res.Direct[i].OneWay {
			t.Errorf("at %d bytes: xdaq %v <= direct %v", res.XDAQ[i].Bytes, res.XDAQ[i].OneWay, res.Direct[i].OneWay)
		}
	}
	first, last := res.Direct[0], res.Direct[len(res.Direct)-1]
	if last.OneWay <= first.OneWay {
		t.Errorf("direct latency not growing with payload: %v at %dB vs %v at %dB",
			first.OneWay, first.Bytes, last.OneWay, last.Bytes)
	}
	if res.FitOverhead.Intercept <= 0 {
		t.Errorf("overhead intercept %.3f µs", res.FitOverhead.Intercept)
	}
}

func TestRunTable1Shape(t *testing.T) {
	rows, err := RunTable1(200, 64, "table")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(table1Order) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if row.Stats.Count == 0 {
			t.Errorf("row %s collected no samples", row.Activity)
		}
		if row.Paper == 0 {
			t.Errorf("row %s has no paper reference", row.Activity)
		}
	}
}

func TestRunAllocAblationShape(t *testing.T) {
	res, err := RunAllocAblation(300, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Allocator != "fixed" || res[1].Allocator != "table" {
		t.Fatalf("results %+v", res)
	}
	for _, r := range res {
		if r.OneWay <= 0 {
			t.Errorf("%s latency %v", r.Allocator, r.OneWay)
		}
	}
}

func TestRunORBShape(t *testing.T) {
	lat, err := RunORB(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("orb latency %v", lat)
	}
}

func TestRunPollingVsTaskShape(t *testing.T) {
	res, err := RunPollingVsTask(50, 64, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d configs", len(res))
	}
	// The slow polling neighbour must hurt: its configuration is the
	// worst of the three.
	slow := res[2].OneWay
	if slow <= res[0].OneWay || slow <= res[1].OneWay {
		t.Errorf("slow PT config %v not slower than %v / %v", slow, res[0].OneWay, res[1].OneWay)
	}
}

func TestRunParallelTransportsShape(t *testing.T) {
	res, err := RunParallelTransports(300*time.Millisecond, 131072, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Transports != 1 || res[1].Transports != 2 {
		t.Fatalf("results %+v", res)
	}
	for _, r := range res {
		if r.Throughput <= 0 {
			t.Errorf("%d transports: throughput %v", r.Transports, r.Throughput)
		}
	}
}

func TestRunPriorityDispatchShape(t *testing.T) {
	res, err := RunPriorityDispatch(10, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Priority != i2o.PriorityUrgent || res[1].Priority != i2o.PriorityBulk {
		t.Fatalf("results %+v", res)
	}
	// The whole point of the seven-level scheduler: an urgent probe must
	// bypass the bulk backlog a bulk probe waits behind.
	if res[0].Latency*2 >= res[1].Latency {
		t.Errorf("urgent %v not clearly faster than bulk %v behind backlog", res[0].Latency, res[1].Latency)
	}
}

// retryShape runs a noisy measurement up to three times, passing if the
// expected shape holds in any run — benchmark directions are stable, but
// a loaded CI machine can corrupt a single short run.
func retryShape(t *testing.T, what string, attempt func() (bool, error)) {
	t.Helper()
	if raceEnabled {
		t.Skip("race detector instrumentation distorts relative timings")
	}
	var lastErr error
	for i := 0; i < 3; i++ {
		ok, err := attempt()
		if err != nil {
			lastErr = err
			continue
		}
		if ok {
			return
		}
		lastErr = nil
	}
	if lastErr != nil {
		t.Fatalf("%s: %v", what, lastErr)
	}
	t.Fatalf("%s: shape did not hold in 3 attempts", what)
}

func TestShapeFixedAllocatorSlower(t *testing.T) {
	// The paper's §5 claim: the original allocator roughly doubles the
	// framework overhead relative to the table scheme.
	retryShape(t, "fixed vs table", func() (bool, error) {
		res, err := RunAllocAblation(1500, 64)
		if err != nil {
			return false, err
		}
		return res[0].OneWay > res[1].OneWay, nil
	})
}

func TestShapeORBSlowerThanXDAQ(t *testing.T) {
	// §6.2: ORB overhead is several times the framework's.
	retryShape(t, "orb vs xdaq", func() (bool, error) {
		orbLat, err := RunORB(800, 64)
		if err != nil {
			return false, err
		}
		rig, err := NewGMRig(RigConfig{})
		if err != nil {
			return false, err
		}
		defer rig.Close()
		xdaqLat, err := rig.MeasureXDAQ(64, 800)
		if err != nil {
			return false, err
		}
		return orbLat > 2*xdaqLat, nil
	})
}

func TestShapeOverheadConstantInPayload(t *testing.T) {
	// Figure 6's central claim: the framework overhead does not grow with
	// payload — the fitted overhead slope over the full sweep must stay
	// small relative to its intercept.
	retryShape(t, "constant overhead", func() (bool, error) {
		res, err := RunFig6(800, "table")
		if err != nil {
			return false, err
		}
		drift := res.FitOverhead.Slope * float64(Fig6Payloads[len(Fig6Payloads)-1])
		if drift < 0 {
			drift = -drift
		}
		return drift < res.FitOverhead.Intercept, nil
	})
}

func TestFitSeries(t *testing.T) {
	// y = 2x + 5 µs, exactly.
	var pts []Point
	for _, x := range []int{0, 1, 2, 10} {
		pts = append(pts, Point{Bytes: x, OneWay: time.Duration(2*x+5) * time.Microsecond})
	}
	fit := FitSeries(pts)
	if fit.Slope < 1.99 || fit.Slope > 2.01 || fit.Intercept < 4.99 || fit.Intercept > 5.01 {
		t.Fatalf("fit %+v", fit)
	}
	if f := FitSeries(nil); f.Slope != 0 || f.Intercept != 0 {
		t.Fatalf("empty fit %+v", f)
	}
	// Degenerate: all points at the same x.
	same := []Point{{Bytes: 3, OneWay: 4 * time.Microsecond}, {Bytes: 3, OneWay: 6 * time.Microsecond}}
	if f := FitSeries(same); f.Intercept != 5 {
		t.Fatalf("degenerate fit %+v", f)
	}
}

func TestNewGMRigBadAllocator(t *testing.T) {
	if _, err := NewGMRig(RigConfig{Allocator: "bogus"}); err == nil {
		t.Fatal("bogus allocator accepted")
	}
}

func TestLocalEchoPath(t *testing.T) {
	rig, err := NewGMRig(RigConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	if err := rig.RoundTrip(rig.LocalEcho, 128); err != nil {
		t.Fatal(err)
	}
}
