package benchlab

import (
	"fmt"
	"sync"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"

	"xdaq/internal/i2o"
	"xdaq/internal/orb"
	"xdaq/internal/probe"
	"xdaq/internal/pta"
	"xdaq/internal/transport/gm"
)

// Fig6Result carries the three series of figure 6.
type Fig6Result struct {
	XDAQ                            []Point // XDAQ over GM, one-way
	Direct                          []Point // GM used directly, one-way
	Overhead                        []Point // difference: the framework software overhead
	FitXDAQ, FitDirect, FitOverhead Fit
}

// RunFig6 sweeps the figure-6 payload sizes with iters calls per point.
func RunFig6(iters int, allocator string) (*Fig6Result, error) {
	rig, err := NewGMRig(RigConfig{Allocator: allocator})
	if err != nil {
		return nil, err
	}
	defer rig.Close()
	direct, err := NewGMDirect()
	if err != nil {
		return nil, err
	}
	defer direct.Close()

	res := &Fig6Result{}
	for _, size := range Fig6Payloads {
		x, err := rig.MeasureXDAQ(size, iters)
		if err != nil {
			return nil, fmt.Errorf("xdaq at %d bytes: %w", size, err)
		}
		g, err := direct.Measure(size, iters)
		if err != nil {
			return nil, fmt.Errorf("gm at %d bytes: %w", size, err)
		}
		res.XDAQ = append(res.XDAQ, Point{Bytes: size, OneWay: x})
		res.Direct = append(res.Direct, Point{Bytes: size, OneWay: g})
		res.Overhead = append(res.Overhead, Point{Bytes: size, OneWay: x - g})
	}
	res.FitXDAQ = FitSeries(res.XDAQ)
	res.FitDirect = FitSeries(res.Direct)
	res.FitOverhead = FitSeries(res.Overhead)
	return res, nil
}

// WhiteboxRow is one Table 1 row.
type WhiteboxRow struct {
	Activity string
	Paper    float64 // µs, the paper's median on the 400 MHz testbed
	Stats    probe.Stats
}

// Table1Paper lists the medians reported in Table 1 of the paper.
var Table1Paper = map[string]float64{
	gm.ProbeName:      2.92,
	"exec.demux":      0.22,
	"exec.upcall":     0.47,
	"exec.app":        3.6,
	"exec.release":    2.49,
	"pool.frameAlloc": 2.18,
	"pool.frameFree":  1.78,
}

// table1Order fixes the report row order to match the paper.
var table1Order = []string{
	gm.ProbeName, "exec.demux", "exec.upcall", "exec.app", "exec.release",
	"pool.frameAlloc", "pool.frameFree",
}

// RunTable1 reproduces the whitebox measurement: probes enabled, iters
// echo calls of the given payload, medians per activity.
func RunTable1(iters, payload int, allocator string) ([]WhiteboxRow, error) {
	reg := &probe.Registry{}
	rig, err := NewGMRig(RigConfig{Allocator: allocator, Probes: reg})
	if err != nil {
		return nil, err
	}
	defer rig.Close()

	// Warm with probes off, then measure.
	for i := 0; i < 64; i++ {
		if err := rig.RoundTrip(rig.Echo, payload); err != nil {
			return nil, err
		}
	}
	probe.Enable(true)
	defer probe.Enable(false)
	reg.Reset()
	for i := 0; i < iters; i++ {
		if err := rig.RoundTrip(rig.Echo, payload); err != nil {
			return nil, err
		}
	}
	probe.Enable(false)

	rows := make([]WhiteboxRow, 0, len(table1Order))
	for _, name := range table1Order {
		rows = append(rows, WhiteboxRow{
			Activity: name,
			Paper:    Table1Paper[name],
			Stats:    reg.Point(name).Stats(),
		})
	}
	return rows, nil
}

// AllocResult compares the two buffer pool schemes (§5: 8.9 µs with the
// original allocator, 4.9 µs after the table-based optimization).
type AllocResult struct {
	Allocator string
	OneWay    time.Duration // XDAQ one-way latency
	Overhead  time.Duration // minus the direct-GM baseline
}

// RunAllocAblation measures the framework overhead under both allocators
// at the given payload size.
func RunAllocAblation(iters, payload int) ([]AllocResult, error) {
	direct, err := NewGMDirect()
	if err != nil {
		return nil, err
	}
	base, err := direct.Measure(payload, iters)
	direct.Close()
	if err != nil {
		return nil, err
	}
	var out []AllocResult
	for _, alloc := range []string{"fixed", "table"} {
		rig, err := NewGMRig(RigConfig{Allocator: alloc})
		if err != nil {
			return nil, err
		}
		lat, err := rig.MeasureXDAQ(payload, iters)
		rig.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, AllocResult{Allocator: alloc, OneWay: lat, Overhead: lat - base})
	}
	return out, nil
}

// RunORB measures the CORBA-like broker over the same GM fabric (§6.2).
func RunORB(iters, payload int) (time.Duration, error) {
	fabric := gm.NewFabric()
	na, err := fabric.Open(1)
	if err != nil {
		return 0, err
	}
	nb, err := fabric.Open(2)
	if err != nil {
		return 0, err
	}
	wa, err := orb.NewGMWire(na, 2, 32)
	if err != nil {
		return 0, err
	}
	wb, err := orb.NewGMWire(nb, 1, 32)
	if err != nil {
		return 0, err
	}
	client := orb.NewEndpoint(wa)
	server := orb.NewEndpoint(wb)
	defer client.Close()
	defer server.Close()
	servant := orb.NewServant()
	servant.Register("echo", func(args []any) ([]any, error) { return args, nil })
	server.Bind("bench", servant)

	ref := client.Object("bench")
	data := make([]byte, payload)
	call := func() error {
		out, err := ref.Invoke("echo", data)
		if err != nil {
			return err
		}
		if b, ok := out[0].([]byte); !ok || len(b) != payload {
			return fmt.Errorf("benchlab: orb echo mismatch")
		}
		return nil
	}
	for i := 0; i < 32; i++ {
		if err := call(); err != nil {
			return 0, err
		}
	}
	samples := make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := call(); err != nil {
			return 0, err
		}
		samples[i] = time.Since(t0)
	}
	return median(samples) / 2, nil
}

// slowPT is a deliberately expensive polling transport: its Poll scan
// costs `cost` of CPU time and never yields data — the "slow PT, e.g. a
// poll operation on a TCP socket" whose presence in the polling set
// negates the benefits of a lightweight interface (§4).
type slowPT struct {
	name string
	cost time.Duration
}

func (s *slowPT) Name() string                        { return s.name }
func (s *slowPT) Send(i2o.NodeID, *i2o.Message) error { return fmt.Errorf("slowPT: send unsupported") }
func (s *slowPT) Start(pta.Deliver) error             { return nil }
func (s *slowPT) Stop() error                         { return nil }
func (s *slowPT) Poll(pta.Deliver, int) int {
	deadline := time.Now().Add(s.cost)
	for time.Now().Before(deadline) {
	}
	return 0
}

// NewSlowPT returns a polling-mode transport whose every scan costs the
// given CPU time and never yields data, for the polling-vs-task ablation.
func NewSlowPT(name string, cost time.Duration) pta.PeerTransport {
	return &slowPT{name: name, cost: cost}
}

// PollingResult is one polling-vs-task configuration measurement.
type PollingResult struct {
	Config string
	OneWay time.Duration
}

// RunPollingVsTask measures echo latency in three configurations: GM PT
// in task mode, GM PT polling alone, and GM PT polling next to a slow
// polling PT (the configuration the paper warns about).
func RunPollingVsTask(iters, payload int, slowCost time.Duration) ([]PollingResult, error) {
	var out []PollingResult
	run := func(label string, mode pta.Mode, slow bool) error {
		rig, err := NewGMRig(RigConfig{Mode: mode})
		if err != nil {
			return err
		}
		defer rig.Close()
		if slow {
			if err := rig.AgentA.Register(&slowPT{name: "pt.slow", cost: slowCost}, pta.Polling); err != nil {
				return err
			}
			if err := rig.AgentB.Register(&slowPT{name: "pt.slow", cost: slowCost}, pta.Polling); err != nil {
				return err
			}
		}
		lat, err := rig.MeasureXDAQ(payload, iters)
		if err != nil {
			return err
		}
		out = append(out, PollingResult{Config: label, OneWay: lat})
		return nil
	}
	if err := run("task mode", pta.Task, false); err != nil {
		return nil, err
	}
	if err := run("polling, GM alone", pta.Polling, false); err != nil {
		return nil, err
	}
	if err := run("polling, GM + slow PT", pta.Polling, true); err != nil {
		return nil, err
	}
	return out, nil
}

// ParallelResult is one transport-parallelism measurement.
type ParallelResult struct {
	Transports int
	Throughput float64 // round trips per second, aggregate
}

// RunParallelTransports measures aggregate echo throughput with the
// traffic of several concurrent requesters split across one or two GM
// transports between the same pair of executives — §4's "we can use
// multiple transports to send and receive in parallel".
func RunParallelTransports(duration time.Duration, payload, streams int) ([]ParallelResult, error) {
	var out []ParallelResult
	for _, transports := range []int{1, 2} {
		tput, err := runParallel(duration, payload, streams, transports)
		if err != nil {
			return nil, err
		}
		out = append(out, ParallelResult{Transports: transports, Throughput: tput})
	}
	return out, nil
}

// RunParallelTransportsN measures a single transport-count configuration
// and returns its aggregate round-trip throughput per second.
func RunParallelTransportsN(duration time.Duration, payload, streams, transports int) (float64, error) {
	return runParallel(duration, payload, streams, transports)
}

// parallelBandwidth slows the modelled links so that wire serialization,
// not host CPU, is the binding constraint — the regime where a second
// transport pays off (and the regime the paper's gigabit-era hardware
// lived in).
const parallelBandwidth = 20e6

func runParallel(duration time.Duration, payload, streams, transports int) (float64, error) {
	rig, err := NewGMRig(RigConfig{Bandwidth: parallelBandwidth})
	if err != nil {
		return 0, err
	}
	defer rig.Close()

	targets := make([]i2o.TID, streams)
	for i := range targets {
		targets[i] = rig.Echo
	}
	if transports > 1 {
		// A second fabric between the same executives, registered as a
		// distinct route; half the streams get proxies over it.
		fabric2 := gm.NewFabric()
		fabric2.SetBandwidth(parallelBandwidth)
		routes := map[i2o.NodeID]gm.Port{1: 1, 2: 2}
		nicA, err := fabric2.Open(1)
		if err != nil {
			return 0, err
		}
		nicB, err := fabric2.Open(2)
		if err != nil {
			return 0, err
		}
		trA, err := gm.NewTransport(nicA, rig.A.Allocator(), gm.Config{Name: "pt.gm2", Routes: routes})
		if err != nil {
			return 0, err
		}
		trB, err := gm.NewTransport(nicB, rig.B.Allocator(), gm.Config{Name: "pt.gm2", Routes: routes})
		if err != nil {
			return 0, err
		}
		if err := rig.AgentA.Register(trA, pta.Task); err != nil {
			return 0, err
		}
		if err := rig.AgentB.Register(trB, pta.Task); err != nil {
			return 0, err
		}
		// A second echo instance reachable via the second route.
		echo2 := NewEchoDevice(2)
		tid2, err := rig.B.Plug(echo2)
		if err != nil {
			return 0, err
		}
		entry, err := rig.A.Table().AllocProxy("echo", 2, 2, "pt.gm2", tid2)
		if err != nil {
			return 0, err
		}
		for i := range targets {
			if i%2 == 1 {
				targets[i] = entry.TID
			}
		}
	}

	var wg sync.WaitGroup
	counts := make([]uint64, streams)
	stop := time.Now().Add(duration)
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				if err := rig.RoundTrip(targets[s], payload); err != nil {
					errs <- err
					return
				}
				counts[s]++
			}
		}(s)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	return float64(total) / duration.Seconds(), nil
}

// PriorityResult is one priority-scheduling measurement.
type PriorityResult struct {
	Priority i2o.Priority
	Latency  time.Duration // gate-open to probe reply
}

// PriorityRig measures the seven-level scheduler deterministically: the
// dispatch loop is parked inside a gate handler while a bulk backlog and
// one probe frame are queued, then the gate opens and the time until the
// probe's reply is measured.  An urgent probe bypasses the backlog (level
// 0 is served first); a bulk probe waits behind every backlog frame.
type PriorityRig struct {
	E            *executive.Executive
	gateTID      i2o.TID
	echoTID      i2o.TID
	collectorTID i2o.TID
	entered      chan struct{}
	release      chan struct{}
	replyAt      chan time.Time
}

// NewPriorityRig builds the single-executive rig.
func NewPriorityRig() (*PriorityRig, error) {
	p := &PriorityRig{
		E: executive.New(executive.Options{
			Name: "prio", Node: 1,
			RequestTimeout: 30 * time.Second,
			Logf:           func(string, ...any) {},
		}),
		entered: make(chan struct{}, 1),
	}
	gate := device.New("gate", 0)
	gate.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		p.entered <- struct{}{}
		<-p.release
		return nil
	})
	var err error
	if p.gateTID, err = p.E.Plug(gate); err != nil {
		p.E.Close()
		return nil, err
	}
	echo := NewEchoDevice(0)
	if p.echoTID, err = p.E.Plug(echo); err != nil {
		p.E.Close()
		return nil, err
	}
	// The collector timestamps the probe's reply on the dispatch
	// goroutine itself, so scheduling of a waiting goroutine cannot
	// distort the measurement.
	p.replyAt = make(chan time.Time, 1)
	collector := device.New("collector", 0)
	collector.Bind(EchoXFunc, func(ctx *device.Context, m *i2o.Message) error {
		p.replyAt <- time.Now()
		return nil
	})
	if p.collectorTID, err = p.E.Plug(collector); err != nil {
		p.E.Close()
		return nil, err
	}
	return p, nil
}

// Close shuts the rig down.
func (p *PriorityRig) Close() { p.E.Close() }

// Probe queues `backlog` bulk frames plus one probe at the given priority
// behind a closed gate, opens the gate, and returns the time until the
// probe's reply arrived.
func (p *PriorityRig) Probe(prio i2o.Priority, backlog int) (time.Duration, error) {
	p.release = make(chan struct{})
	// Park the dispatcher inside the gate handler.
	if err := p.E.Send(&i2o.Message{
		Priority: i2o.PriorityUrgent, Target: p.gateTID, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}); err != nil {
		return 0, err
	}
	<-p.entered

	// Seed the backlog: bulk, no reply expected, all to the echo device.
	for i := 0; i < backlog; i++ {
		if err := p.E.Send(&i2o.Message{
			Priority: i2o.PriorityBulk, Target: p.echoTID, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: EchoXFunc,
		}); err != nil {
			return 0, err
		}
	}

	// The probe: reply-expected, routed back to the collector device,
	// which timestamps arrival inside the dispatch loop.
	if err := p.E.Send(&i2o.Message{
		Flags:    i2o.FlagReplyExpected,
		Priority: prio, Target: p.echoTID, Initiator: p.collectorTID,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: EchoXFunc,
	}); err != nil {
		return 0, err
	}

	start := time.Now()
	close(p.release)
	select {
	case at := <-p.replyAt:
		return at.Sub(start), nil
	case <-time.After(10 * time.Second):
		return 0, fmt.Errorf("benchlab: probe reply never arrived")
	}
}

// RunPriorityDispatch runs iters gated probes per priority with the given
// backlog and returns the average latencies.
func RunPriorityDispatch(iters, backlog int) ([]PriorityResult, error) {
	rig, err := NewPriorityRig()
	if err != nil {
		return nil, err
	}
	defer rig.Close()
	var out []PriorityResult
	for _, prio := range []i2o.Priority{i2o.PriorityUrgent, i2o.PriorityBulk} {
		var total time.Duration
		for i := 0; i < iters; i++ {
			lat, err := rig.Probe(prio, backlog)
			if err != nil {
				return nil, err
			}
			total += lat
		}
		out = append(out, PriorityResult{Priority: prio, Latency: total / time.Duration(iters)})
	}
	return out, nil
}
