package e2e_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"xdaq"
	"xdaq/internal/cluster"
	"xdaq/internal/controlplane"
	"xdaq/internal/i2o"
	"xdaq/internal/tclish"
)

// TestPolicyScrapeOverI2O closes the observability loop of the control
// plane: a worker node runs the autopilot, its rule fires exactly once,
// and a host node reads the decision log back over ordinary I2O frames
// (ExecPolicyGet) — the same path `xdaqctl ... -e 'policy <node>'`
// drives.  Every remote decision row must be byte-identical to the
// worker's local decision log.
func TestPolicyScrapeOverI2O(t *testing.T) {
	host, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "host", Node: 100, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	worker, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "worker", Node: 2, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	if err := xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(host, worker)); err != nil {
		t.Fatal(err)
	}

	// The rule fires on the autopilot's first tick and never again, so the
	// decision log is static by the time the host scrapes it.
	pol, err := controlplane.Load("e2e.tcl", `
rule once {
    when {$tick == 1}
    do {log fired; dispatchers 2}
}`)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := controlplane.NewAutopilot(controlplane.AutopilotConfig{
		Exec: worker.Exec, Policy: pol, Interval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()

	deadline := time.Now().Add(5 * time.Second)
	for ap.Controller().Tick() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	local := ap.Controller().Decisions()
	if len(local) != 2 {
		t.Fatalf("local decisions %v, want the noted log plus the actuation", local)
	}
	if local[0].Outcome != "noted" || local[1].Outcome != "actuated" {
		t.Fatalf("local decisions %v", local)
	}
	if got := worker.Exec.Dispatchers(); got != 2 {
		t.Fatalf("actuation did not land: dispatchers = %d, want 2", got)
	}

	ctl, err := cluster.NewPrimary(host.Exec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AddNode(2, "worker"); err != nil {
		t.Fatal(err)
	}
	params, err := ctl.Policy(2)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]any, len(params))
	for _, p := range params {
		byKey[p.Key] = p.Value
	}
	if byKey["autopilot"] != "on" {
		t.Fatalf("autopilot param %v", byKey["autopilot"])
	}
	if byKey["policy"] != "e2e.tcl" || byKey["hash"] != pol.Hash {
		t.Fatalf("policy identity %v / %v", byKey["policy"], byKey["hash"])
	}
	if byKey["rules"] != int64(1) {
		t.Fatalf("rules param %v", byKey["rules"])
	}
	for _, d := range local {
		key := fmt.Sprintf("decision.%08d", d.Seq)
		if got := byKey[key]; got != d.String() {
			t.Errorf("remote %s = %q, local log says %q", key, got, d.String())
		}
	}

	// The operator view: the same scrape through a bound tclish session
	// (`xdaqctl -e 'policy 2'`) renders the identical rows.
	var out bytes.Buffer
	in := tclish.New(&out)
	ctl.Bind(in)
	rendered, err := in.Eval("policy 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"autopilot", "e2e.tcl", pol.Hash, "rule=once", "outcome=actuated"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("tcl policy output lacks %q:\n%s", want, rendered)
		}
	}

	// A node without an autopilot answers autopilot=off rather than
	// erroring — the host itself has none.
	selfParams, err := hostPolicy(host)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range selfParams {
		if p.Key == "autopilot" && p.Value == "off" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bare node policy report %v, want autopilot=off", selfParams)
	}
}

// hostPolicy scrapes a node's own executive over the wire-identical
// request the cluster controller would send.
func hostPolicy(n *xdaq.Node) ([]i2o.Param, error) {
	target, err := n.Exec.Resolve("executive", 0, i2o.NodeNone)
	if err != nil {
		return nil, err
	}
	rep, err := n.Exec.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: target, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecPolicyGet,
	})
	if err != nil {
		return nil, err
	}
	defer rep.Release()
	return i2o.DecodeParams(rep.Payload)
}
