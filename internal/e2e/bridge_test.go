package e2e_test

import (
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/tid"
	"xdaq/internal/transport/gm"
	"xdaq/internal/transport/pci"
)

// TestPeerOperationThroughBridge reproduces figure 3(a): peer
// communication redirected through a messaging instance, here an IOP that
// sits on two fabrics.  Node A (a host on a PCI segment) and node B (a
// network node on the GM fabric) share no transport; node C is attached
// to both.  A addresses a proxy whose remote TiD is C's own proxy for the
// device on B, so C's executive redirects the frame — and the reply walks
// the same path back through the return proxies each hop creates.  The
// caller on A never knows the call crossed two wires.
func TestPeerOperationThroughBridge(t *testing.T) {
	segment := pci.NewSegment(16)
	fabric := gm.NewFabric()
	gmRoutes := map[i2o.NodeID]gm.Port{2: 2, 3: 3}

	mk := func(id i2o.NodeID) (*executive.Executive, *pta.Agent) {
		e := executive.New(executive.Options{
			Name: "bridge", Node: id,
			RequestTimeout: 3 * time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		return e, agent
	}

	// Node A: host, PCI segment only.
	a, agentA := mk(1)
	epA, err := segment.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := agentA.Register(epA, pta.Polling); err != nil {
		t.Fatal(err)
	}
	a.SetRoute(3, pci.PTName) // A reaches only C

	// Node C: the bridge IOP, on both fabrics.
	c, agentC := mk(3)
	epC, err := segment.Attach(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := agentC.Register(epC, pta.Polling); err != nil {
		t.Fatal(err)
	}
	nicC, err := fabric.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	trC, err := gm.NewTransport(nicC, c.Allocator(), gm.Config{Routes: gmRoutes})
	if err != nil {
		t.Fatal(err)
	}
	if err := agentC.Register(trC, pta.Task); err != nil {
		t.Fatal(err)
	}
	c.SetRoute(1, pci.PTName)
	c.SetRoute(2, gm.PTName)

	// Node B: network node, GM only.
	b, agentB := mk(2)
	nicB, err := fabric.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := gm.NewTransport(nicB, b.Allocator(), gm.Config{Routes: gmRoutes})
	if err != nil {
		t.Fatal(err)
	}
	if err := agentB.Register(trB, pta.Task); err != nil {
		t.Fatal(err)
	}
	b.SetRoute(3, gm.PTName)

	// The target device lives on B.
	echo := device.New("echo", 0)
	echo.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := b.Plug(echo); err != nil {
		t.Fatal(err)
	}

	// C discovers it over GM and holds a proxy for it.
	proxyOnC, err := c.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}

	// A cannot reach B; it installs a proxy whose remote TiD is C's proxy.
	// (In a full system C's HRT could advertise its proxies; here the
	// bridge entry is installed by the operator, as a system table would.)
	entry, err := a.Table().AllocProxy("echo-via-bridge", 0, 3, pci.PTName, proxyOnC)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := a.Request(&i2o.Message{
		Target: entry.TID, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: []byte("two hops out, two hops back"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	if string(rep.Payload) != "two hops out, two hops back" {
		t.Fatalf("payload %q", rep.Payload)
	}

	// The bridge really relayed: C forwarded in both directions.
	if c.Stats().Forwarded < 2 {
		t.Fatalf("bridge forwarded %d frames, want >= 2", c.Stats().Forwarded)
	}
	// And the hop-by-hop return path exists: C holds a return proxy for
	// A's initiator, B holds one for C's.
	found := false
	for _, e := range c.Table().Entries() {
		if e.Kind == tid.Proxy && e.Node == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("bridge created no return proxy toward A")
	}
}
