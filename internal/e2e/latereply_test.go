package e2e_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/tid"
	"xdaq/internal/transport/tcp"
)

// TestLateReplyAfterFailover pins down the reply path's behavior across a
// mid-flight route failover:
//
//   - a request is parked server-side on the GM data plane while the
//     caller's route to the server fails over to TCP;
//   - the eventual reply rides the server's return proxy, which pinned the
//     route the request arrived on — the *old* GM transport — and must
//     still correlate and complete the waiting request, exactly once;
//   - a forged duplicate of that reply (same initiator context, arriving
//     after the pending slot is gone) must be dropped, not delivered into
//     some later request;
//   - a fresh request after the failover rides TCP and completes with its
//     own payload.
func TestLateReplyAfterFailover(t *testing.T) {
	_, workers := buildMixedCluster(t)
	a, b := workers[1], workers[2]

	// A gated echo: the first request parks until released — later ones
	// answer immediately — and each request's correlation context is
	// reported so the test can forge a duplicate reply.
	gate := make(chan struct{})
	ctxs := make(chan uint32, 4)
	var parkedOnce atomic.Bool
	slow := device.New("slow", 0)
	slow.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		ctxs <- m.InitiatorContext
		if parkedOnce.CompareAndSwap(false, true) {
			<-gate
		}
		return device.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := b.exec.Plug(slow); err != nil {
		t.Fatal(err)
	}
	target, err := a.exec.Discover(2, "slow", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Park one request on B.  It travels over GM: that is A's current
	// route to node 2, and B's return proxy for A pins the same fabric.
	type result struct {
		rep *i2o.Message
		err error
	}
	done := make(chan result, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m, err := a.exec.AllocMessage(6)
		if err != nil {
			done <- result{nil, err}
			return
		}
		copy(m.Payload, "parked")
		m.Target = target
		m.Initiator = i2o.TIDExecutive
		m.XFunction = 1
		rep, err := a.exec.RequestContext(ctx, m)
		done <- result{rep, err}
	}()
	staleCtx := <-ctxs // the request reached B and is parked

	// Mid-flight failover: A now routes node 2 over TCP.  The parked
	// request's reply will still come back over GM — the failover must not
	// strand it.
	if n := a.exec.FailoverRoute(2, tcp.PTName); n == 0 {
		t.Fatal("failover rerouted no proxies")
	}
	if r, _ := a.exec.Route(2); r != tcp.PTName {
		t.Fatalf("route after failover: %q", r)
	}

	gate <- struct{}{} // let B reply on the old fabric
	res := <-done
	if res.err != nil {
		t.Fatalf("request completed across failover: %v", res.err)
	}
	if string(res.rep.Payload) != "parked" {
		t.Fatalf("reply payload %q, want %q", res.rep.Payload, "parked")
	}
	res.rep.Release()

	// The reply was consumed exactly once: its pending slot is gone, so a
	// duplicate of the same reply — same initiator context, as a confused
	// or malicious peer might resend — is dropped, never delivered.
	waitFor(t, 2*time.Second, "pending table drained", func() bool {
		return a.exec.PendingRequests() == 0
	})
	before := a.exec.Stats().Dropped
	dup := &i2o.Message{
		Flags: i2o.FlagReply, Priority: i2o.PriorityNormal,
		Target: i2o.TIDExecutive, Initiator: target,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		InitiatorContext: staleCtx, Payload: []byte("duplicate"),
	}
	if err := a.exec.Inject(dup); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "duplicate reply dropped", func() bool {
		return a.exec.Stats().Dropped > before
	})

	// The proxy now rides TCP end to end; a fresh request completes with
	// its own payload, undisturbed by the forged duplicate.
	if en, ok := a.exec.Table().Lookup(target); !ok || en.Kind != tid.Proxy || en.Route != tcp.PTName {
		t.Fatalf("proxy entry after failover: %+v ok=%v", en, ok)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	m, err := a.exec.AllocMessage(5)
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Payload, "fresh")
	m.Target = target
	m.Initiator = i2o.TIDExecutive
	m.XFunction = 1
	rep, err := a.exec.RequestContext(ctx, m)
	if err != nil {
		t.Fatalf("fresh request over the failed-over route: %v", err)
	}
	if string(rep.Payload) != "fresh" {
		t.Fatalf("fresh reply payload %q", rep.Payload)
	}
	rep.Release()
}
