// Package e2e_test exercises the deployment described in the paper's own
// benchmark setup (§5): "The Myrinet/GM PT ran as a thread.  Another PT
// thread was handling TCP communication for configuration and control
// purposes."  Two processing nodes exchange data over the simulated GM
// fabric while a primary host configures and controls them over real TCP
// sockets — two peer transports live on each executive, selected per
// route.
package e2e_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"xdaq/internal/cluster"
	"xdaq/internal/daq"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	_ "xdaq/internal/modules"
	"xdaq/internal/pta"
	"xdaq/internal/tclish"
	"xdaq/internal/transport/gm"
	"xdaq/internal/transport/tcp"
)

// node is one cluster member with both transports registered.
type node struct {
	exec  *executive.Executive
	agent *pta.Agent
	tcp   *tcp.Transport
	gmTr  *gm.Transport
}

// buildMixedCluster wires a host (node 100, TCP only) and two workers
// (nodes 1 and 2, TCP for control + GM for data).
func buildMixedCluster(t *testing.T) (host *node, workers map[i2o.NodeID]*node) {
	t.Helper()
	fabric := gm.NewFabric()
	gmRoutes := map[i2o.NodeID]gm.Port{1: 1, 2: 2}

	mk := func(id i2o.NodeID, withGM bool) *node {
		e := executive.New(executive.Options{
			Name: "e2e", Node: id,
			RequestTimeout: 3 * time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := tcp.New(id, e.Allocator(), tcp.Config{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Register(tr, pta.Task); err != nil {
			t.Fatal(err)
		}
		n := &node{exec: e, agent: agent, tcp: tr}
		if withGM {
			nic, err := fabric.Open(gmRoutes[id])
			if err != nil {
				t.Fatal(err)
			}
			n.gmTr, err = gm.NewTransport(nic, e.Allocator(), gm.Config{Routes: gmRoutes})
			if err != nil {
				t.Fatal(err)
			}
			if err := agent.Register(n.gmTr, pta.Task); err != nil {
				t.Fatal(err)
			}
		}
		t.Cleanup(func() {
			agent.Close()
			e.Close()
		})
		return n
	}

	host = mk(100, false)
	workers = map[i2o.NodeID]*node{1: mk(1, true), 2: mk(2, true)}

	// Control plane: everyone reaches everyone over TCP.
	all := map[i2o.NodeID]*node{100: host, 1: workers[1], 2: workers[2]}
	for idA, a := range all {
		for idB, b := range all {
			if idA == idB {
				continue
			}
			a.tcp.AddPeer(idB, b.tcp.Addr())
			a.exec.SetRoute(idB, tcp.PTName)
		}
	}
	// Data plane: the workers talk to each other over GM.
	workers[1].exec.SetRoute(2, gm.PTName)
	workers[2].exec.SetRoute(1, gm.PTName)
	return host, workers
}

func TestControlOverTCPDataOverGM(t *testing.T) {
	host, workers := buildMixedCluster(t)

	// The primary host plugs DAQ modules on the workers over TCP.
	ctl, err := cluster.NewPrimary(host.exec)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []i2o.NodeID{1, 2} {
		if err := ctl.AddNode(id, "worker"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctl.Plug(1, "daq.evm", 0, []i2o.Param{{Key: "events", Value: int64(30)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Plug(1, "daq.ru", 0, []i2o.Param{{Key: "fragsize", Value: int64(512)}}); err != nil {
		t.Fatal(err)
	}

	// Worker 2 runs a builder unit whose event traffic crosses GM.
	bu := daq.NewBU(0)
	if _, err := workers[2].exec.Plug(bu.Device()); err != nil {
		t.Fatal(err)
	}
	evmTID, err := workers[2].exec.Discover(1, daq.EVMClass, 0)
	if err != nil {
		t.Fatal(err)
	}
	ruTID, err := workers[2].exec.Discover(1, daq.RUClass, 0)
	if err != nil {
		t.Fatal(err)
	}
	bu.Configure(evmTID, []i2o.TID{ruTID})
	if _, err := bu.Start(0, 4); err != nil {
		t.Fatal(err)
	}
	stats, err := bu.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Built != 30 || stats.Corrupt != 0 {
		t.Fatalf("built %d, corrupt %d", stats.Built, stats.Corrupt)
	}
	if want := uint64(30 * 512); stats.Bytes != want {
		t.Fatalf("bytes %d, want %d", stats.Bytes, want)
	}

	// The data plane really used GM, not TCP: worker GM NIC traffic.
	if workers[2].gmTr == nil {
		t.Fatal("no gm transport")
	}
	gmSent := workers[2].agent.Stats().Sent
	if gmSent == 0 {
		t.Fatal("agent recorded no sends")
	}
	// And the control plane really used TCP.
	sent, _ := host.tcp.Stats()
	if sent == 0 {
		t.Fatal("host sent nothing over TCP")
	}

	// The host can read the run's results back over TCP.
	params, err := ctl.GetParams(1, daq.RUClass, 0, []string{"fragsize"})
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 1 || params[0].Value != int64(512) {
		t.Fatalf("params %v", params)
	}
}

func TestTclSessionDrivesMixedCluster(t *testing.T) {
	host, workers := buildMixedCluster(t)
	ctl, err := cluster.NewPrimary(host.exec)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []i2o.NodeID{1, 2} {
		if err := ctl.AddNode(id, "worker"); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	in := tclish.New(&out)
	ctl.Bind(in)
	script := `
foreach n [nodes] {
    plug $n echo 0
    puts "node $n: [status $n]"
}
quiesce all
enable all
`
	if _, err := in.Eval(script); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "node 1:") || !strings.Contains(out.String(), "state operational") {
		t.Fatalf("session output:\n%s", out.String())
	}
	// The plugged echo devices answer over the GM data plane.
	target, err := workers[1].exec.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := workers[1].exec.Request(&i2o.Message{
		Target: target, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: []byte("via gm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	if string(rep.Payload) != "via gm" {
		t.Fatalf("payload %q", rep.Payload)
	}
}
