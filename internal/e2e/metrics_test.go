package e2e_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xdaq"
	"xdaq/internal/cluster"
	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
)

// paramValue finds one key in a decoded parameter list and returns it as
// a uint64 (metrics counters travel as uint64, gauges as int64).
func paramValue(t *testing.T, params []i2o.Param, key string) uint64 {
	t.Helper()
	for _, p := range params {
		if p.Key != key {
			continue
		}
		switch v := p.Value.(type) {
		case uint64:
			return v
		case int64:
			return uint64(v)
		default:
			t.Fatalf("param %s has type %T, want integer", key, p.Value)
		}
	}
	t.Fatalf("param %s missing from reply (%d params)", key, len(params))
	return 0
}

// TestMetricsScrapeOverI2O reproduces the management scheme end to end: a
// host node scrapes a worker's metrics registry over ordinary loopback
// frames (ExecMetricsGet) and the numbers must match what the worker's
// own executive counted locally.
func TestMetricsScrapeOverI2O(t *testing.T) {
	metrics.Enable(true)
	defer metrics.Enable(false)

	host, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "host", Node: 100, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	worker, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "worker", Node: 2, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	if err := xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(host, worker)); err != nil {
		t.Fatal(err)
	}

	echo := xdaq.NewDevice("echo", 0)
	echo.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
		return xdaq.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := worker.Plug(echo); err != nil {
		t.Fatal(err)
	}
	target, err := host.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	const calls = 25
	for i := 0; i < calls; i++ {
		if _, err := host.Call(target, 1, []byte("ping")); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	ctl, err := cluster.NewPrimary(host.Exec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AddNode(2, "worker"); err != nil {
		t.Fatal(err)
	}

	// The scrape's own dispatch is counted after the handler snapshots the
	// registry, so the remote value must equal the local reading taken
	// just before the request.
	localDispatched := worker.Exec.Stats().Dispatched
	params, err := ctl.Metrics(2, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := paramValue(t, params, "exec.dispatched"); got != localDispatched {
		t.Errorf("remote exec.dispatched = %d, local Stats().Dispatched = %d", got, localDispatched)
	}
	if got := paramValue(t, params, "exec.dispatched"); got < calls {
		t.Errorf("exec.dispatched = %d, want at least the %d echo calls", got, calls)
	}
	if got := paramValue(t, params, "pta.pt.loopback.recv"); got == 0 {
		t.Error("pta.pt.loopback.recv = 0 after loopback traffic")
	}
	if got := paramValue(t, params, "pta.pt.loopback.recvBytes"); got == 0 {
		t.Error("pta.pt.loopback.recvBytes = 0 after loopback traffic")
	}
	// Queue wait histograms collect while metrics.Enable(true); the echo
	// requests all travelled at the default priority.
	prio := int(i2o.PriorityDefault)
	key := "exec.queue.wait.p" + string(rune('0'+prio)) + ".count"
	if got := paramValue(t, params, key); got == 0 {
		t.Errorf("%s = 0 with metrics timing enabled", key)
	}

	// Prefix filtering keeps scrapes of a busy node cheap.
	filtered, err := ctl.Metrics(2, "pta.")
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) == 0 {
		t.Fatal("prefix scrape returned nothing")
	}
	for _, p := range filtered {
		if !strings.HasPrefix(p.Key, "pta.") {
			t.Errorf("prefix scrape leaked %q", p.Key)
		}
	}
}

// TestMetricsHTTPExport serves a node's registry the way cmd/xdaqd
// -metrics does and checks the Prometheus text rendering carries the
// executive dispatch counters and the loopback transport's counters.
func TestMetricsHTTPExport(t *testing.T) {
	a, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "a", Node: 11, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := xdaq.NewNode(xdaq.NodeOptions{
		Name: "b", Node: 12, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := xdaq.Connect(xdaq.Loopback(), xdaq.Nodes(a, b)); err != nil {
		t.Fatal(err)
	}
	echo := xdaq.NewDevice("echo", 0)
	echo.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
		return xdaq.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := b.Plug(echo); err != nil {
		t.Fatal(err)
	}
	target, err := a.Discover(12, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(target, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(b.Exec.Metrics())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want Prometheus text", ct)
	}
	text := string(body)
	for _, want := range []string{
		"xdaq_exec_dispatched_total",
		"xdaq_pt_loopback_sent_total",
		"xdaq_pta_recv_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus export missing %s\n%s", want, text)
		}
	}
}
