package e2e_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"xdaq"
	"xdaq/internal/device"
	"xdaq/internal/executive"
	"xdaq/internal/health"
	"xdaq/internal/i2o"
	"xdaq/internal/transport/tcp"
)

// plugWire plugs a plain echo device used as the data-plane stand-in.
func plugWire(t *testing.T, e *executive.Executive) {
	t.Helper()
	d := device.New("wire", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, m.Payload)
	})
	if _, err := e.Plug(d); err != nil {
		t.Fatal(err)
	}
}

// TestKillOneOfThree is the headline fault-tolerance demo: a three-node
// GM cluster loses a member, the survivors are unaffected, and calls to
// the dead node turn into fast typed errors instead of hung requests.
func TestKillOneOfThree(t *testing.T) {
	mk := func(id xdaq.NodeID) *xdaq.Node {
		n, err := xdaq.NewNode(xdaq.NodeOptions{
			Name: "ft", Node: id,
			RequestTimeout: 10 * time.Second, // the hang we refuse to wait out
			Logf:           func(string, ...any) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		return n
	}
	n1, n2, n3 := mk(1), mk(2), mk(3)
	if err := xdaq.Connect(xdaq.GM(), xdaq.Nodes(n1, n2, n3)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*xdaq.Node{n2, n3} {
		echo := xdaq.NewDevice("echo", 0)
		echo.Bind(1, func(ctx *xdaq.Context, m *xdaq.Message) error {
			return xdaq.ReplyIfExpected(ctx, m, m.Payload)
		})
		if _, err := n.Plug(echo); err != nil {
			t.Fatal(err)
		}
	}
	// A tarpit on node 3 parks one request server-side, so it is still
	// pending when the node dies.  The block channel is closed before the
	// node's cleanup so its dispatch loop can exit.
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	tarpit := xdaq.NewDevice("tarpit", 0)
	tarpit.Bind(2, func(ctx *xdaq.Context, m *xdaq.Message) error {
		<-block
		return nil
	})
	if _, err := n3.Plug(tarpit); err != nil {
		t.Fatal(err)
	}
	to2, err := n1.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	to3, err := n1.Discover(3, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	toTarpit, err := n1.Discover(3, "tarpit", 0)
	if err != nil {
		t.Fatal(err)
	}

	mon := n1.StartHealth(xdaq.HealthOptions{
		Interval:  40 * time.Millisecond,
		Timeout:   60 * time.Millisecond,
		Threshold: 3,
	})
	waitFor(t, 2*time.Second, "both peers up", func() bool {
		return mon.State(2) == xdaq.PeerUp && mon.State(3) == xdaq.PeerUp
	})

	// An in-flight request is parked on node 3 when it dies.
	inflight := make(chan error, 1)
	go func() {
		_, err := n1.Call(toTarpit, 2, []byte("doomed"))
		inflight <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the frame reach the tarpit
	killed := time.Now()
	// Kill the node's connectivity: its transports stop, so it vanishes
	// from the fabric mid-request.  (Its executive is torn down by the
	// test cleanup, after the tarpit is released.)
	n3.Agent.Close()

	// The survivors never notice: 1 -> 2 keeps answering throughout the
	// detection window and after it.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && mon.State(3) != xdaq.PeerDown {
		if got, err := n1.Call(to2, 1, []byte("alive")); err != nil || string(got) != "alive" {
			t.Fatalf("surviving pair broken during detection: %q %v", got, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if mon.State(3) != xdaq.PeerDown {
		t.Fatal("dead node never declared down")
	}

	// The parked request fails with the typed sentinel well inside the
	// detection bound (interval x threshold plus slack), nowhere near the
	// 10s request timeout.
	select {
	case err := <-inflight:
		if !errors.Is(err, xdaq.ErrPeerDown) {
			t.Fatalf("in-flight call to dead node: %v, want ErrPeerDown", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight call still parked after the peer was declared down")
	}
	if d := time.Since(killed); d > 3*time.Second {
		t.Fatalf("detection took %v", d)
	}

	// New calls fail immediately, and the verdict is visible in metrics.
	start := time.Now()
	if _, err := n1.Call(to3, 1, []byte("late")); !errors.Is(err, xdaq.ErrPeerDown) {
		t.Fatalf("call to dead node: %v, want ErrPeerDown", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("fail-fast took %v", d)
	}
	if n := n1.Exec.Metrics().Counter("health.transitions.down").Value(); n == 0 {
		t.Fatal("down transition not recorded in node 1 metrics")
	}
	if got, err := n1.Call(to2, 1, []byte("still here")); err != nil || string(got) != "still here" {
		t.Fatalf("survivor call after detection: %q %v", got, err)
	}
}

// TestFailoverGMToTCP reproduces the paper's two-transport deployment
// (§5: GM for data, TCP for control) and shows the health monitor moving
// a peer's route from the dead GM fabric onto the TCP control network
// without the peer ever being declared down.
func TestFailoverGMToTCP(t *testing.T) {
	host, workers := buildMixedCluster(t)
	_ = host
	a, b := workers[1], workers[2]

	plugWire(t, b.exec) // the wire echo device from e2e_test.go
	target, err := a.exec.Discover(2, "wire", 0)
	if err != nil {
		t.Fatal(err)
	}

	cfg := health.Config{
		Interval:  30 * time.Millisecond,
		Timeout:   50 * time.Millisecond,
		Threshold: 3,
	}
	cfgA, cfgB := cfg, cfg
	cfgA.Fallback = map[i2o.NodeID]string{2: tcp.PTName}
	cfgB.Fallback = map[i2o.NodeID]string{1: tcp.PTName}
	monA := health.New(a.exec, cfgA)
	defer monA.Close()
	monB := health.New(b.exec, cfgB)
	defer monB.Close()

	waitFor(t, 2*time.Second, "peers up over gm", func() bool {
		return monA.State(2) == health.Up && monB.State(1) == health.Up
	})

	// The Myrinet fabric dies: both workers stop their GM transports, so
	// frames between them vanish (or fail) while TCP stays healthy.
	a.gmTr.Stop()
	b.gmTr.Stop()

	waitFor(t, 3*time.Second, "both routes failed over to tcp", func() bool {
		ra, _ := a.exec.Route(2)
		rb, _ := b.exec.Route(1)
		return ra == tcp.PTName && rb == tcp.PTName
	})
	waitFor(t, 3*time.Second, "peers up again over tcp", func() bool {
		return monA.State(2) == health.Up && monB.State(1) == health.Up
	})
	if a.exec.PeerDown(2) || b.exec.PeerDown(1) {
		t.Fatal("peer declared down despite a working fallback fabric")
	}
	if n := a.exec.Metrics().Counter("health.failovers").Value(); n != 1 {
		t.Fatalf("health.failovers on A = %d, want 1", n)
	}

	// Data keeps flowing: the pre-failover proxy now rides the control
	// network.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	m, err := a.exec.AllocMessage(4)
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Payload, "data")
	m.Target = target
	m.Initiator = i2o.TIDExecutive
	m.XFunction = 1
	rep, err := a.exec.RequestContext(ctx, m)
	if err != nil {
		t.Fatalf("call after GM->TCP failover: %v", err)
	}
	if string(rep.Payload) != "data" {
		t.Fatalf("echo after failover: %q", rep.Payload)
	}
	rep.Release()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
