package executive

import (
	"errors"
	"fmt"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/probe"
	"xdaq/internal/queue"
	"xdaq/internal/tid"
	"xdaq/internal/trace"
)

// dispatchWorker is one dispatch goroutine.  With Dispatchers(1) — the
// default — a single worker draining one frame per scheduler visit IS the
// paper's "loop of control [that] remains in the executive framework",
// byte-identical in ordering.  With N > 1, the scheduler's exclusive
// checkout keeps the I2O discipline intact across workers: a device's
// frames stay FIFO and at most one is in flight, while distinct devices
// dispatch on distinct cores.
func (e *Executive) dispatchWorker() {
	defer e.dispWG.Done()
	max := e.opts.DispatchBatch
	if max <= 0 {
		max = 16
	}
	buf := make([]*i2o.Message, max)
	var epoch uint64
	for {
		// Retire if the configured worker count shrank below the live
		// count.  The check runs before every scheduler visit and
		// PopExclusiveBatch bounces on any epoch change — even one that
		// fired between visits — so a shrink's Interrupt can never be
		// slept through.
		for {
			live := e.dispLive.Load()
			if live <= e.dispWant.Load() {
				break
			}
			if e.dispLive.CompareAndSwap(live, live-1) {
				return
			}
		}
		k := e.batchSize()
		if k > len(buf) {
			k = len(buf)
		}
		n, ok := e.in.PopExclusiveBatch(buf[:k], &epoch)
		if !ok {
			// Closed and drained: this worker is done for good.
			for {
				live := e.dispLive.Load()
				if e.dispLive.CompareAndSwap(live, live-1) {
					return
				}
			}
		}
		if n > 0 {
			e.nBatches.Add(1)
			e.dispBusy.Add(1)
			for i := 0; i < n; i++ {
				m := buf[i]
				buf[i] = nil
				// Capture before dispatch: the frame may be recycled (and
				// its fields scrubbed) by the time dispatch returns.
				tgt := m.Target
				excl := queue.Exclusive(m)
				e.dispatch(m)
				if excl {
					e.in.DeviceDone(tgt)
				}
			}
			e.dispBusy.Add(-1)
		}
	}
}

// dispatch delivers one frame: pending-reply correlation first, then
// address table lookup, then the device upcall with the whitebox probes of
// Table 1 around each stage.
func (e *Executive) dispatch(m *i2o.Message) {
	// Replies to synchronous requests never reach a handler; the waiting
	// Request call owns them.  (A correlated reply with no waiter here may
	// still target a proxy — a bridge IOP relays it onward below.)
	correlated := m.Flags.Has(i2o.FlagReply) && m.InitiatorContext != 0
	if correlated {
		if e.deliverPending(m.InitiatorContext, m) {
			e.nReplies.Add(1)
			return
		}
	}

	entry, ok := e.table.Lookup(m.Target)
	if !ok {
		e.failAndRelease(m, i2o.FailUnknownTarget, m.Target.String())
		return
	}
	if entry.Kind == tid.Proxy {
		e.traceFrame(trace.Forwarded, m)
		if err := e.forward(entry, m); err != nil {
			e.Logf("forward %v: %v", entry.TID, err)
			e.nFailures.Add(1)
		}
		return
	}

	// A correlated reply for a local device whose waiter already gave up is
	// dropped rather than upcalled: the scheduler dispatched it without
	// checking out its device (see queue.Exclusive), so running a handler
	// here could race the device's in-flight frame.
	if correlated {
		e.nDropped.Add(1)
		m.Recycle()
		return
	}

	e.mu.RLock()
	d := e.devices[m.Target]
	e.mu.RUnlock()
	if d == nil {
		e.failAndRelease(m, i2o.FailUnknownTarget, m.Target.String())
		return
	}
	if !d.Accepts(m) {
		e.failAndRelease(m, i2o.FailDeviceState, d.String())
		return
	}

	if probe.Enabled() {
		e.dispatchProbed(d, m)
	} else {
		e.dispatchFast(d, m)
	}
}

// dispatchFast is the blackbox-configuration path: no timestamps at all.
func (e *Executive) dispatchFast(d *device.Device, m *i2o.Message) {
	e.traceFrame(trace.Dispatched, m)
	h, ctx, err := d.Lookup(m)
	if err != nil {
		// Uncorrelated late replies fall through to here; they are dropped
		// silently rather than answered, which would loop.
		if m.Flags.Has(i2o.FlagReply) {
			e.nDropped.Add(1)
			m.Recycle()
			return
		}
		e.failAndRelease(m, i2o.FailUnknownFunction, err.Error())
		return
	}
	err = e.invoke(d, h, ctx, m)
	e.nDispatched.Add(1)
	if err != nil {
		e.fail(m, failCodeFor(err), err.Error())
	}
	m.Recycle()
}

// dispatchProbed mirrors dispatchFast with a probe around every stage,
// reproducing the whitebox rows: demultiplexing to functor, upcall of
// functor, application processing, frame release and postprocessing.
func (e *Executive) dispatchProbed(d *device.Device, m *i2o.Message) {
	e.traceFrame(trace.Dispatched, m)
	t0 := time.Now()
	h, ctx, err := d.Lookup(m)
	t1 := time.Now()
	e.pDemux.Record(t1.Sub(t0))
	if err != nil {
		if m.Flags.Has(i2o.FlagReply) {
			e.nDropped.Add(1)
			m.Recycle()
			return
		}
		e.failAndRelease(m, i2o.FailUnknownFunction, err.Error())
		return
	}
	// The upcall probe covers the invocation machinery itself (recovery
	// frame, watchdog arm) as distinct from the application body, which
	// times itself via the wrapper below.
	var appStart time.Time
	wrapped := func(c *device.Context, msg *i2o.Message) error {
		appStart = time.Now()
		return h(c, msg)
	}
	err = e.invoke(d, wrapped, ctx, m)
	t2 := time.Now()
	if appStart.IsZero() {
		appStart = t2 // handler never entered (watchdog raced)
	}
	e.pUpcall.Record(appStart.Sub(t1))
	e.pApp.Record(t2.Sub(appStart))
	e.nDispatched.Add(1)
	if err != nil {
		e.fail(m, failCodeFor(err), err.Error())
	}
	e.Free(m)
	e.pRelease.Since(t2)
	m.Recycle()
}

// invoke runs a handler with panic containment and, when configured, the
// watchdog deadline.  A panicking or overrunning handler faults its device
// so the round-robin loop cannot be monopolized (§4).
//
// The watchdog path borrows a reusable runner goroutine and a pooled timer
// instead of spawning both per frame; the spawn cost is paid only the
// first time (or after a timeout strands a runner on its stuck handler).
func (e *Executive) invoke(d *device.Device, h device.Handler, ctx *device.Context, m *i2o.Message) error {
	if e.opts.Watchdog <= 0 {
		return e.safeCall(d, h, ctx, m)
	}
	r := e.runners.get(e)
	r.in <- wdJob{d: d, h: h, ctx: ctx, m: m}
	t := acquireTimer(e.opts.Watchdog)
	select {
	case err := <-r.done:
		releaseTimer(t)
		e.runners.put(r)
		return err
	case <-t.C:
		releaseTimer(t)
		d.SetState(device.Faulted)
		e.Logf("watchdog: %s exceeded %v handling %v; device faulted", d, e.opts.Watchdog, m)
		// The runner is stuck in the overrunning handler; reap it back to
		// the pool whenever the handler finally returns.
		go func() {
			<-r.done
			e.runners.put(r)
		}()
		return fmt.Errorf("%w: handler exceeded %v", errAborted, e.opts.Watchdog)
	}
}

// errAborted marks watchdog and panic terminations for failCodeFor.
var errAborted = errors.New("aborted")

func (e *Executive) safeCall(d *device.Device, h device.Handler, ctx *device.Context, m *i2o.Message) (err error) {
	defer func() {
		if r := recover(); r != nil {
			d.SetState(device.Faulted)
			e.Logf("panic in %s handling %v: %v; device faulted", d, m, r)
			err = fmt.Errorf("%w: handler panic: %v", errAborted, r)
		}
	}()
	return h(ctx, m)
}

func failCodeFor(err error) i2o.FailCode {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errAborted):
		return i2o.FailAborted
	case errors.Is(err, device.ErrNoHandler):
		return i2o.FailUnknownFunction
	case errors.Is(err, i2o.ErrTruncated), errors.Is(err, i2o.ErrShortBuffer):
		return i2o.FailBadFrame
	case errors.Is(err, ErrPeerDown):
		return i2o.FailPeerDown
	default:
		return i2o.FailApplication
	}
}

// fail sends a failure reply when the initiator expects one.
func (e *Executive) fail(req *i2o.Message, code i2o.FailCode, detail string) {
	e.traceFrame(trace.Failed, req)
	e.nFailures.Add(1)
	if !req.Flags.Has(i2o.FlagReplyExpected) || !req.Initiator.Valid() {
		e.nDropped.Add(1)
		return
	}
	rep := i2o.NewFailReply(req, code, detail)
	if err := e.Send(rep); err != nil {
		e.nDropped.Add(1)
		e.Logf("fail reply to %v undeliverable: %v", req.Initiator, err)
	}
}

// failAndRelease is fail followed by recycling the request frame.
func (e *Executive) failAndRelease(req *i2o.Message, code i2o.FailCode, detail string) {
	e.fail(req, code, detail)
	req.Recycle()
}
