package executive

import (
	"errors"
	"fmt"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/probe"
	"xdaq/internal/tid"
	"xdaq/internal/trace"
)

// loop is the executive's single dispatch goroutine: the "loop of control
// [that] remains in the executive framework".
func (e *Executive) loop() {
	defer close(e.loopDone)
	for {
		m, ok := e.in.Pop()
		if !ok {
			return
		}
		e.dispatch(m)
	}
}

// dispatch delivers one frame: pending-reply correlation first, then
// address table lookup, then the device upcall with the whitebox probes of
// Table 1 around each stage.
func (e *Executive) dispatch(m *i2o.Message) {
	// Replies to synchronous requests never reach a handler; the waiting
	// Request call owns them.
	if m.Flags.Has(i2o.FlagReply) && m.InitiatorContext != 0 {
		if p := e.takePending(m.InitiatorContext); p != nil {
			e.nReplies.Add(1)
			p.ch <- m
			return
		}
	}

	entry, ok := e.table.Lookup(m.Target)
	if !ok {
		e.failAndRelease(m, i2o.FailUnknownTarget, m.Target.String())
		return
	}
	if entry.Kind == tid.Proxy {
		e.traceFrame(trace.Forwarded, m)
		if err := e.forward(entry, m); err != nil {
			e.Logf("forward %v: %v", entry.TID, err)
			e.nFailures.Add(1)
		}
		return
	}

	e.mu.RLock()
	d := e.devices[m.Target]
	e.mu.RUnlock()
	if d == nil {
		e.failAndRelease(m, i2o.FailUnknownTarget, m.Target.String())
		return
	}
	if !d.Accepts(m) {
		e.failAndRelease(m, i2o.FailDeviceState, d.String())
		return
	}

	if probe.Enabled() {
		e.dispatchProbed(d, m)
	} else {
		e.dispatchFast(d, m)
	}
}

// dispatchFast is the blackbox-configuration path: no timestamps at all.
func (e *Executive) dispatchFast(d *device.Device, m *i2o.Message) {
	e.traceFrame(trace.Dispatched, m)
	h, ctx, err := d.Lookup(m)
	if err != nil {
		// Late replies (whose waiter timed out) fall through to here; they
		// are dropped silently rather than answered, which would loop.
		if m.Flags.Has(i2o.FlagReply) {
			e.nDropped.Add(1)
			m.Release()
			return
		}
		e.failAndRelease(m, i2o.FailUnknownFunction, err.Error())
		return
	}
	err = e.invoke(d, h, ctx, m)
	e.nDispatched.Add(1)
	if err != nil {
		e.fail(m, failCodeFor(err), err.Error())
	}
	m.Release()
}

// dispatchProbed mirrors dispatchFast with a probe around every stage,
// reproducing the whitebox rows: demultiplexing to functor, upcall of
// functor, application processing, frame release and postprocessing.
func (e *Executive) dispatchProbed(d *device.Device, m *i2o.Message) {
	e.traceFrame(trace.Dispatched, m)
	t0 := time.Now()
	h, ctx, err := d.Lookup(m)
	t1 := time.Now()
	e.pDemux.Record(t1.Sub(t0))
	if err != nil {
		if m.Flags.Has(i2o.FlagReply) {
			e.nDropped.Add(1)
			m.Release()
			return
		}
		e.failAndRelease(m, i2o.FailUnknownFunction, err.Error())
		return
	}
	// The upcall probe covers the invocation machinery itself (recovery
	// frame, watchdog arm) as distinct from the application body, which
	// times itself via the wrapper below.
	var appStart time.Time
	wrapped := func(c *device.Context, msg *i2o.Message) error {
		appStart = time.Now()
		return h(c, msg)
	}
	err = e.invoke(d, wrapped, ctx, m)
	t2 := time.Now()
	if appStart.IsZero() {
		appStart = t2 // handler never entered (watchdog raced)
	}
	e.pUpcall.Record(appStart.Sub(t1))
	e.pApp.Record(t2.Sub(appStart))
	e.nDispatched.Add(1)
	if err != nil {
		e.fail(m, failCodeFor(err), err.Error())
	}
	e.Free(m)
	e.pRelease.Since(t2)
}

// invoke runs a handler with panic containment and, when configured, the
// watchdog deadline.  A panicking or overrunning handler faults its device
// so the round-robin loop cannot be monopolized (§4).
func (e *Executive) invoke(d *device.Device, h device.Handler, ctx *device.Context, m *i2o.Message) error {
	if e.opts.Watchdog <= 0 {
		return e.safeCall(d, h, ctx, m)
	}
	done := make(chan error, 1)
	go func() { done <- e.safeCall(d, h, ctx, m) }()
	timer := time.NewTimer(e.opts.Watchdog)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		d.SetState(device.Faulted)
		e.Logf("watchdog: %s exceeded %v handling %v; device faulted", d, e.opts.Watchdog, m)
		return fmt.Errorf("%w: handler exceeded %v", errAborted, e.opts.Watchdog)
	}
}

// errAborted marks watchdog and panic terminations for failCodeFor.
var errAborted = errors.New("aborted")

func (e *Executive) safeCall(d *device.Device, h device.Handler, ctx *device.Context, m *i2o.Message) (err error) {
	defer func() {
		if r := recover(); r != nil {
			d.SetState(device.Faulted)
			e.Logf("panic in %s handling %v: %v; device faulted", d, m, r)
			err = fmt.Errorf("%w: handler panic: %v", errAborted, r)
		}
	}()
	return h(ctx, m)
}

func failCodeFor(err error) i2o.FailCode {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errAborted):
		return i2o.FailAborted
	case errors.Is(err, device.ErrNoHandler):
		return i2o.FailUnknownFunction
	case errors.Is(err, i2o.ErrTruncated), errors.Is(err, i2o.ErrShortBuffer):
		return i2o.FailBadFrame
	case errors.Is(err, ErrPeerDown):
		return i2o.FailPeerDown
	default:
		return i2o.FailApplication
	}
}

// fail sends a failure reply when the initiator expects one.
func (e *Executive) fail(req *i2o.Message, code i2o.FailCode, detail string) {
	e.traceFrame(trace.Failed, req)
	e.nFailures.Add(1)
	if !req.Flags.Has(i2o.FlagReplyExpected) || !req.Initiator.Valid() {
		e.nDropped.Add(1)
		return
	}
	rep := i2o.NewFailReply(req, code, detail)
	if err := e.Send(rep); err != nil {
		e.nDropped.Add(1)
		e.Logf("fail reply to %v undeliverable: %v", req.Initiator, err)
	}
}

// failAndRelease is fail followed by releasing the request's buffer.
func (e *Executive) failAndRelease(req *i2o.Message, code i2o.FailCode, detail string) {
	e.fail(req, code, detail)
	req.Release()
}
