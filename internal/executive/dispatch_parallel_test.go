package executive

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestParallelDispatchersSerializePerDevice floods N>1 dispatch workers
// with frames for several devices; every handler checks that it is never
// entered concurrently for its device and that frames arrive in FIFO
// order.  This is the I2O discipline the scheduler's exclusive checkout
// must uphold when the single loop of control becomes many.
func TestParallelDispatchersSerializePerDevice(t *testing.T) {
	opts := quietOpts("par", 1)
	opts.Dispatchers = 4
	e := New(opts)
	t.Cleanup(e.Close)

	const devices, perDevice = 6, 300
	var violations atomic.Int32
	var handled atomic.Int32
	entered := make([]atomic.Int32, devices)
	lastSeq := make([]uint32, devices)
	ids := make([]i2o.TID, devices)
	for i := 0; i < devices; i++ {
		i := i
		d := device.New("count", i)
		d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
			if entered[i].Add(1) != 1 {
				violations.Add(1)
			}
			if seq := m.TransactionContext; seq != lastSeq[i]+1 {
				violations.Add(1) // safe: checkout serializes this handler
			} else {
				lastSeq[i] = seq
			}
			if m.TransactionContext%61 == 0 {
				time.Sleep(time.Microsecond)
			}
			entered[i].Add(-1)
			handled.Add(1)
			return nil
		})
		id, err := e.Plug(d)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seq := uint32(1); seq <= perDevice; seq++ {
				m := &i2o.Message{
					Priority: i2o.PriorityNormal, Target: ids[i],
					Initiator: i2o.TIDExecutive, Function: i2o.FuncPrivate,
					Org: i2o.OrgXDAQ, XFunction: 1, TransactionContext: seq,
				}
				if err := e.Send(m); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, 10*time.Second, func() bool {
		return handled.Load() == devices*perDevice
	}, "all frames dispatched")
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d per-device serialization/FIFO violations", v)
	}
}

// TestParallelSlowDeviceDoesNotDelayOthers pins one device's handler and
// checks a second device still answers while the first is stuck — the
// whole point of spending more than one dispatcher.
func TestParallelSlowDeviceDoesNotDelayOthers(t *testing.T) {
	opts := quietOpts("par", 1)
	opts.Dispatchers = 2
	e := New(opts)
	t.Cleanup(e.Close)

	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // unblock the handler before e.Close
	stuck := device.New("stuck", 0)
	stuck.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		<-release
		return nil
	})
	stuckID, err := e.Plug(stuck)
	if err != nil {
		t.Fatal(err)
	}
	echoID, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}

	if err := e.Send(&i2o.Message{
		Priority: i2o.PriorityNormal, Target: stuckID,
		Initiator: i2o.TIDExecutive, Function: i2o.FuncPrivate,
		Org: i2o.OrgXDAQ, XFunction: 1,
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		rep, err := e.RequestTimeout(&i2o.Message{
			Priority: i2o.PriorityNormal, Target: echoID,
			Initiator: i2o.TIDExecutive, Function: i2o.FuncPrivate,
			Org: i2o.OrgXDAQ, XFunction: 1, Payload: []byte("hi"),
		}, 2*time.Second)
		if err == nil {
			rep.Recycle()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("echo while peer device stuck: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("echo request blocked behind the stuck device")
	}
}

// TestSetDispatchersRuntime scales the worker pool up and down on a live
// executive and checks dispatch keeps working and the live count
// converges.
func TestSetDispatchersRuntime(t *testing.T) {
	e := newExec(t, "scale", 1)
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	call := func() {
		t.Helper()
		rep, err := e.Request(&i2o.Message{
			Priority: i2o.PriorityNormal, Target: id, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
			Payload: []byte("x"),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Recycle()
	}

	call()
	e.SetDispatchers(4)
	if got := e.Dispatchers(); got != 4 {
		t.Fatalf("Dispatchers() = %d, want 4", got)
	}
	waitFor(t, 2*time.Second, func() bool { return e.dispLive.Load() == 4 }, "4 live workers")
	for i := 0; i < 20; i++ {
		call()
	}
	e.SetDispatchers(1)
	waitFor(t, 2*time.Second, func() bool { return e.dispLive.Load() == 1 }, "surplus workers retired")
	for i := 0; i < 20; i++ {
		call()
	}
	e.SetDispatchers(0) // clamps to 1
	if got := e.Dispatchers(); got != 1 {
		t.Fatalf("Dispatchers() after clamp = %d, want 1", got)
	}
}

// TestPendingSlotLateReplyGuard is the satellite-1 regression test: a
// request times out, its recycled pending slot is picked up by a second
// request, and then the first request's reply finally arrives.  The stale
// reply must be dropped — never delivered into the reused slot.
func TestPendingSlotLateReplyGuard(t *testing.T) {
	e := newExec(t, "slots", 1)
	ctxs := make(chan uint32, 8)
	sink := device.New("sink", 0)
	sink.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		ctxs <- m.InitiatorContext // swallow the request, never reply
		return nil
	})
	id, err := e.Plug(sink)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *i2o.Message {
		return &i2o.Message{
			Priority: i2o.PriorityNormal, Target: id, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		}
	}

	// Request 1 times out; its slot returns to the pool.
	if _, err := e.RequestTimeout(mk(), 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("request 1: %v", err)
	}
	staleCtx := <-ctxs

	// Request 2 registers (very likely reusing the recycled slot).
	res := make(chan error, 1)
	go func() {
		_, err := e.RequestTimeout(mk(), 400*time.Millisecond)
		res <- err
	}()
	<-ctxs // request 2 reached the sink, so its pending slot is registered

	// The stale reply lands now.  It must be dropped, not delivered.
	stale := &i2o.Message{
		Flags: i2o.FlagReply, Priority: i2o.PriorityNormal,
		Target: i2o.TIDExecutive, Initiator: id,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		InitiatorContext: staleCtx, Payload: []byte("stale"),
	}
	before := e.Stats().Dropped
	if err := e.Inject(stale); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return e.Stats().Dropped > before }, "stale reply dropped")

	if err := <-res; !errors.Is(err, ErrTimeout) {
		t.Fatalf("request 2 got %v, want its own timeout (stale reply must not complete it)", err)
	}
}

// TestWatchdogRunnerReuse shows the shared watchdog machinery reuses one
// runner goroutine across dispatches instead of spawning per frame, and
// that an overrun still faults the device and frees a fresh runner for the
// frames after it.
func TestWatchdogRunnerReuse(t *testing.T) {
	opts := quietOpts("wd", 1)
	opts.Watchdog = 50 * time.Millisecond
	e := New(opts)
	t.Cleanup(e.Close)
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		rep, err := e.Request(&i2o.Message{
			Priority: i2o.PriorityNormal, Target: id, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Recycle()
	}
	if idle := e.runners.idle(); idle != 1 {
		t.Fatalf("runner pool idle = %d after sequential dispatches, want 1 reused runner", idle)
	}

	// An overrunning handler strands its runner; the device faults and the
	// initiator sees FailAborted.
	block := make(chan struct{})
	var unblock sync.Once
	t.Cleanup(func() { unblock.Do(func() { close(block) }) })
	slow := device.New("slow", 0)
	slow.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		<-block
		return nil
	})
	slowID, err := e.Plug(slow)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Request(&i2o.Message{
		Priority: i2o.PriorityNormal, Target: slowID, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	})
	var rec *i2o.FailRecord
	if !errors.As(err, &rec) || rec.Code != i2o.FailAborted {
		t.Fatalf("watchdog overrun: %v", err)
	}
	if slow.State() != device.Faulted {
		t.Fatalf("slow device state %v, want Faulted", slow.State())
	}
	unblock.Do(func() { close(block) }) // let the stranded runner finish and be reaped

	// Dispatch keeps working after the abort.
	rep, err := e.Request(&i2o.Message{
		Priority: i2o.PriorityNormal, Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: []byte("after"),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Recycle()
}

// TestDispatchBatchKeepsPriorityOrder runs a single dispatcher with a
// large explicit batch and checks urgent frames still overtake bulk ones
// between batches.
func TestDispatchBatchKeepsPriorityOrder(t *testing.T) {
	opts := quietOpts("batch", 1)
	opts.DispatchBatch = 8
	e := New(opts)
	t.Cleanup(e.Close)

	var mu sync.Mutex
	var order []i2o.Priority
	gate := make(chan struct{})
	d := device.New("order", 0)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		<-gate
		mu.Lock()
		order = append(order, m.Priority)
		mu.Unlock()
		return nil
	})
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	for i := 0; i < n; i++ {
		prio := i2o.PriorityBulk
		if i%2 == 1 {
			prio = i2o.PriorityUrgent
		}
		if err := e.Send(&i2o.Message{
			Priority: prio, Target: id, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == n
	}, "all frames handled")
	// The dispatcher may have grabbed the very first (bulk) frame before the
	// urgent backlog was pushed; from the second observation on, every
	// urgent frame must precede every bulk one.
	sawBulk := false
	for _, p := range order[1:] {
		if p == i2o.PriorityBulk {
			sawBulk = true
		} else if sawBulk {
			t.Fatalf("priority inversion across batches: order %v", order)
		}
	}
}

// TestRecycledFramePreservesLiteralCallers verifies a frame built as a
// plain literal (every pre-existing caller) is untouched by the
// dispatcher's Recycle — only pool-acquired frames are scrubbed.
func TestRecycledFramePreservesLiteralCallers(t *testing.T) {
	e := newExec(t, "lit", 1)
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	m := &i2o.Message{
		Priority: i2o.PriorityNormal, Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	if err := e.Send(m); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return e.Stats().Dispatched > 0 }, "dispatch")
	if m.Target != id || m.XFunction != 1 {
		t.Fatalf("literal frame scrubbed after dispatch: %+v", m)
	}
}
