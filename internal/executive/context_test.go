package executive

import (
	"context"
	"errors"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

func newQuietExec(t *testing.T, node i2o.NodeID) *Executive {
	t.Helper()
	e := New(Options{
		Name: "ctx", Node: node,
		RequestTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	})
	t.Cleanup(e.Close)
	return e
}

// plugSilent registers a device that accepts requests but never replies,
// leaving the caller parked on its pending channel.
func plugSilent(t *testing.T, e *Executive) i2o.TID {
	t.Helper()
	d := device.New("silent", 0)
	d.Bind(1, func(*device.Context, *i2o.Message) error { return nil })
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func pendingLen(e *Executive) int {
	e.pendMu.Lock()
	defer e.pendMu.Unlock()
	return len(e.pending)
}

func TestRequestContextCancellation(t *testing.T) {
	e := newQuietExec(t, 1)
	target := plugSilent(t, e)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.RequestContext(ctx, &i2o.Message{
		Target: target, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("cancellation took %v; did the call wait for the timeout?", d)
	}
	if n := pendingLen(e); n != 0 {
		t.Fatalf("%d pending requests left after cancellation", n)
	}
}

func TestRequestContextDeadlineIsErrTimeout(t *testing.T) {
	e := newQuietExec(t, 1)
	target := plugSilent(t, e)

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.RequestContext(ctx, &i2o.Message{
		Target: target, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("per-call deadline honored after %v; node default leaked in", d)
	}
	if n := pendingLen(e); n != 0 {
		t.Fatalf("%d pending requests left after deadline", n)
	}
}

// sinkRouter swallows every forwarded frame: the black hole a dead peer is.
type sinkRouter struct{}

func (sinkRouter) Forward(route string, dst i2o.NodeID, m *i2o.Message) error {
	m.Release()
	return nil
}

func TestSetPeerDownFailsPendingAndNewRequests(t *testing.T) {
	e := newQuietExec(t, 1)
	e.SetRouter(sinkRouter{})
	e.SetRoute(2, "blackhole")
	entry, err := e.Table().AllocProxy("dev", 0, 2, "blackhole", i2o.TID(7))
	if err != nil {
		t.Fatal(err)
	}

	// A request already in flight when the peer is marked down must fail
	// immediately with ErrPeerDown, not wait out the 2s node timeout.
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := e.Request(&i2o.Message{
			Target: entry.TID, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request register and forward
	e.SetPeerDown(2, true)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("pending request err = %v, want ErrPeerDown", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending request not failed by SetPeerDown")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pending request took %v to fail", d)
	}

	// New sends are refused at the gate.
	err = e.Send(&i2o.Message{
		Target: entry.TID, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	})
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send to down peer err = %v, want ErrPeerDown", err)
	}

	// The probe path bypasses the gate: a ping to the down peer reaches
	// the (black hole) transport and times out instead of short-circuiting.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := e.PingContext(ctx, 2); errors.Is(err, ErrPeerDown) {
		t.Fatalf("ping was blocked by the peer-down gate: %v", err)
	}

	// Marking the peer up again reopens the gate.
	e.SetPeerDown(2, false)
	if e.PeerDown(2) {
		t.Fatal("peer still down after SetPeerDown(false)")
	}
}

func TestFailoverRouteReroutesProxies(t *testing.T) {
	e := newQuietExec(t, 1)
	e.SetRoute(2, "primary")
	entry, err := e.Table().AllocProxy("dev", 0, 2, "primary", i2o.TID(7))
	if err != nil {
		t.Fatal(err)
	}
	if moved := e.FailoverRoute(2, "backup"); moved != 1 {
		t.Fatalf("FailoverRoute moved %d proxies, want 1", moved)
	}
	if r, _ := e.Route(2); r != "backup" {
		t.Fatalf("system table route = %q, want backup", r)
	}
	got, ok := e.Table().Lookup(entry.TID)
	if !ok || got.Route != "backup" {
		t.Fatalf("proxy route = %q, want backup", got.Route)
	}
}
