package executive

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/probe"
	"xdaq/internal/queue"
	"xdaq/internal/tid"
)

// Alloc implements device.Host: frameAlloc, a buffer from the executive's
// pool (probed for the Table 1 cross check).
func (e *Executive) Alloc(n int) (*pool.Buffer, error) {
	if probe.Enabled() {
		t0 := time.Now()
		b, err := e.alloc.Alloc(n)
		e.pFrameAloc.Since(t0)
		return b, err
	}
	return e.alloc.Alloc(n)
}

// AllocMessage builds a private message whose payload lives in a fresh
// pool block of n bytes, ready for zero-copy sending.  The frame struct
// comes from the i2o free list and is recycled by the dispatcher once its
// dispatch ends, so steady-state senders allocate nothing per message.
func (e *Executive) AllocMessage(n int) (*i2o.Message, error) {
	b, err := e.Alloc(n)
	if err != nil {
		return nil, err
	}
	m := i2o.AcquireMessage()
	m.Priority = i2o.PriorityDefault
	m.Function = i2o.FuncPrivate
	m.Org = i2o.OrgXDAQ
	m.Payload = b.Bytes()
	m.AttachBuffer(b)
	return m, nil
}

// Free releases a message's pool buffer (frameFree).  Equivalent to
// m.Release, with the whitebox probe applied.
func (e *Executive) Free(m *i2o.Message) {
	if probe.Enabled() {
		t0 := time.Now()
		m.Release()
		e.pFrameFree.Since(t0)
		return
	}
	m.Release()
}

// Send implements device.Host: frameSend.  Ownership of the message (and
// its attached buffer) passes to the executive: local targets are pushed
// to the inbound scheduler, proxy targets are forwarded through the
// router.  The caller must not touch m afterwards unless it retained the
// buffer first.
func (e *Executive) Send(m *i2o.Message) error {
	return e.send(m, false)
}

// send is Send with a bypass for the peer-down gate, so health probes can
// keep testing a node that is marked down (recovery would otherwise be
// undetectable).
func (e *Executive) send(m *i2o.Message, bypassDown bool) error {
	if err := m.Validate(); err != nil {
		return err
	}
	entry, ok := e.table.Lookup(m.Target)
	if !ok {
		e.nDropped.Add(1)
		return fmt.Errorf("%w: %v", tid.ErrUnknown, m.Target)
	}
	if entry.Kind == tid.Proxy {
		// The peer-down gate fast-fails NEW work addressed at a down
		// peer.  Replies (return-proxy targets) are exempt: the request
		// they answer already arrived, and swallowing the answer turns a
		// one-sided down-marking into a hang on the other side — a node
		// that marks a live peer down (a graceful leave does exactly
		// this) would otherwise also stop acking that peer's frames and
		// drag it down too.  If the peer really is dead the forward
		// fails at the transport instead.
		if !bypassDown && e.PeerDown(entry.Node) && !strings.HasPrefix(entry.Class, peerClass) {
			m.Release()
			e.nDropped.Add(1)
			return fmt.Errorf("%w: %v", ErrPeerDown, entry.Node)
		}
		return e.forward(entry, m)
	}
	if err := e.in.Push(m); err != nil {
		e.nDropped.Add(1)
		if err == queue.ErrFull {
			// Both sentinels stay in the chain: queue.ErrFull is the public
			// ErrQueueFull, pool.ErrExhausted is the historical resource
			// classification.
			return fmt.Errorf("%w (%w): inbound queue", queue.ErrFull, pool.ErrExhausted)
		}
		return ErrClosed
	}
	return nil
}

// Inject pushes a frame into the inbound scheduler without address
// rewriting.  Transports and tests use it for locally terminated frames.
func (e *Executive) Inject(m *i2o.Message) error {
	if err := e.in.Push(m); err != nil {
		e.nDropped.Add(1)
		m.Release()
		return ErrClosed
	}
	return nil
}

// InjectFrom delivers a frame received from a remote IOP.  Peer operation
// (figure 4): the receiving side creates (or finds) a local proxy for the
// remote initiator and rewrites the frame's initiator address to it, so
// replies route back transparently — the caller never needs to know the
// device is remote.
func (e *Executive) InjectFrom(src i2o.NodeID, route string, m *i2o.Message) error {
	if m.Initiator.Valid() {
		local, err := e.returnProxy(src, route, m.Initiator)
		if err != nil {
			m.Release()
			return err
		}
		m.Initiator = local
	}
	return e.Inject(m)
}

// peerClass prefixes return proxies in the address table.  The full class
// name includes the arrival route, so that when two transports connect
// the same pair of IOPs in parallel (§4), replies travel back over the
// transport the request came in on rather than collapsing onto whichever
// route made first contact.
const peerClass = "@peer"

func (e *Executive) returnProxy(node i2o.NodeID, route string, remote i2o.TID) (i2o.TID, error) {
	class := peerClass + ":" + route
	if entry, ok := e.table.Resolve(class, int(remote), node); ok {
		return entry.TID, nil
	}
	entry, err := e.table.AllocProxy(class, int(remote), node, route, remote)
	if err != nil {
		// A concurrent delivery may have created it between Resolve and
		// AllocProxy.
		if entry, ok := e.table.Resolve(class, int(remote), node); ok {
			return entry.TID, nil
		}
		return i2o.TIDNone, err
	}
	return entry.TID, nil
}

// forward hands a frame for a proxy entry to the router, rewriting the
// target to the remote TiD.  Ownership passes to the router.
func (e *Executive) forward(entry tid.Entry, m *i2o.Message) error {
	e.mu.RLock()
	r := e.router
	e.mu.RUnlock()
	if r == nil {
		m.Release()
		return fmt.Errorf("%w: no router installed", ErrNoRoute)
	}
	m.Target = entry.Remote
	if err := r.Forward(entry.Route, entry.Node, m); err != nil {
		return fmt.Errorf("executive: forward via %s: %w", entry.Route, err)
	}
	e.nForwarded.Add(1)
	return nil
}

// Request implements device.Host: it assigns a fresh initiator context,
// marks the frame reply-expected, sends it and blocks for the correlated
// reply (or the node's default timeout).  The caller owns the returned
// reply and must Release it when it carries a pool buffer.
func (e *Executive) Request(m *i2o.Message) (*i2o.Message, error) {
	return e.RequestContext(context.Background(), m)
}

// RequestTimeout is Request with an explicit per-call deadline.
func (e *Executive) RequestTimeout(m *i2o.Message, d time.Duration) (*i2o.Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return e.RequestContext(ctx, m)
}

// RequestContext is Request honoring the context's cancellation and
// deadline.  A context without a deadline falls back to the node's
// configured RequestTimeout.  When the call is cancelled or times out, the
// pending reply is unregistered and any reply racing in is released, so no
// pool buffer is stranded; deadline expiry surfaces as ErrTimeout, plain
// cancellation as the context's own error.
func (e *Executive) RequestContext(ctx context.Context, m *i2o.Message) (*i2o.Message, error) {
	return e.requestContext(ctx, m, false)
}

func (e *Executive) requestContext(ctx context.Context, m *i2o.Message, bypassDown bool) (*i2o.Message, error) {
	reqCtx := e.nextContext()
	m.InitiatorContext = reqCtx
	m.Flags |= i2o.FlagReplyExpected

	// Resolve the destination node up front so a later peer-down sweep can
	// find this request.
	node := i2o.NodeNone
	if entry, ok := e.table.Lookup(m.Target); ok && entry.Kind == tid.Proxy {
		node = entry.Node
	}
	p := getPending(node)
	e.pendMu.Lock()
	e.pending[reqCtx] = p
	e.pendMu.Unlock()

	// Capture before send: ownership of m passes to the executive, and for
	// a local target the dispatcher may have recycled the frame (scrubbing
	// its fields) before we read it again.
	target := m.Target

	if err := e.send(m, bypassDown); err != nil {
		if e.dropPending(reqCtx) {
			// Nobody delivered into the slot (a racing peer-down sweep
			// would have removed the entry first), so it is reusable.
			putPending(p)
		}
		return nil, err
	}

	// The per-call deadline comes from the context; without one, the
	// node-global default applies.
	var timeoutC <-chan time.Time
	var fallback time.Duration
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		fallback = e.opts.RequestTimeout
		timer := acquireTimer(fallback)
		defer releaseTimer(timer)
		timeoutC = timer.C
	}

	select {
	case rep, ok := <-p.ch:
		if !ok {
			// Close() shut the channel; the slot is dead, leave it to the
			// garbage collector.
			return nil, ErrClosed
		}
		putPending(p)
		if err := i2o.ReplyError(rep); err != nil {
			rep.Recycle()
			return nil, replyFailure(err)
		}
		return rep, nil
	case err := <-p.fail:
		putPending(p)
		return nil, err
	case <-ctx.Done():
		e.abandonPending(reqCtx, p)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w: %v (%v)", ErrTimeout, ctx.Err(), target)
		}
		return nil, ctx.Err()
	case <-timeoutC:
		e.abandonPending(reqCtx, p)
		return nil, fmt.Errorf("%w after %v (%v)", ErrTimeout, fallback, target)
	}
}

// abandonPending gives up on a pending request at timeout or cancellation.
// Recycling the slot is only legal when no delivery can still be in
// flight: either our dropPending removed the map entry (so nobody else
// ever will deliver), or the racing deliverer's frame is already parked in
// the buffered channel — deliverPending parks atomically with the removal,
// so a reply frame can always be drained and its pool buffer reclaimed.  A
// peer-down sweep, though, removes entries first and posts its error after;
// a slot caught in that window is abandoned to the garbage collector (the
// error carries no pool buffer, so nothing leaks).
func (e *Executive) abandonPending(reqCtx uint32, p *pendingReq) {
	if e.dropPending(reqCtx) {
		putPending(p)
		return
	}
	if e.drainParked(p) {
		putPending(p)
	}
}

// replyFailure maps remote failure records onto local sentinels, so a peer
// refusing a forward because *its* health monitor marked the final hop down
// surfaces as ErrPeerDown here too.
func replyFailure(err error) error {
	var rec *i2o.FailRecord
	if errors.As(err, &rec) && rec.Code == i2o.FailPeerDown {
		return fmt.Errorf("%w: %v", ErrPeerDown, rec)
	}
	return err
}

// drainParked releases a reply the dispatcher may have parked in the
// buffered channel just before the waiter gave up, so its pool buffer is
// not stranded.  It reports whether a delivery was actually consumed
// (false also covers a channel closed by Close).
func (e *Executive) drainParked(p *pendingReq) bool {
	select {
	case rep, ok := <-p.ch:
		if ok && rep != nil {
			rep.Recycle()
		}
		return ok
	default:
		return false
	}
}

// PingContext sends an ExecPing to the node's executive and waits for the
// empty reply.  It bypasses the peer-down gate — the health monitor must be
// able to probe a node it has given up on, or recovery would never be seen.
func (e *Executive) PingContext(ctx context.Context, node i2o.NodeID) error {
	target, err := e.ExecProxy(node)
	if err != nil {
		return err
	}
	rep, err := e.requestContext(ctx, &i2o.Message{
		Priority:  i2o.PriorityUrgent,
		Target:    target,
		Initiator: i2o.TIDExecutive,
		Function:  i2o.ExecPing,
	}, true)
	if err != nil {
		return err
	}
	rep.Recycle()
	return nil
}

// nextContext returns a nonzero correlation token.
func (e *Executive) nextContext() uint32 {
	for {
		if ctx := e.ctxSeq.Add(1); ctx != 0 {
			return ctx
		}
	}
}

// dropPending unregisters a pending request, reporting whether the entry
// was still present — i.e. whether the caller, not some racing deliverer,
// won ownership of the slot.
func (e *Executive) dropPending(ctx uint32) bool {
	e.pendMu.Lock()
	_, ok := e.pending[ctx]
	if ok {
		delete(e.pending, ctx)
	}
	e.pendMu.Unlock()
	return ok
}

// deliverPending hands a correlated reply to its waiter.  The park into the
// slot's buffered channel happens inside the same critical section that
// removes the map entry: a waiter giving up concurrently either still finds
// the entry (and owns the slot), or finds it gone with the frame already
// parked — drainParked can then always reclaim the reply's pool buffer, so
// an abandoned slot never strands a block.
func (e *Executive) deliverPending(ctx uint32, m *i2o.Message) bool {
	e.pendMu.Lock()
	p, ok := e.pending[ctx]
	if ok {
		delete(e.pending, ctx)
		p.ch <- m
	}
	e.pendMu.Unlock()
	return ok
}

// Resolve implements device.Host: it returns the local TiD for a device on
// any node.  Local devices resolve against the table; remote devices must
// already have a proxy (created by Discover or by return traffic).
func (e *Executive) Resolve(class string, instance int, node i2o.NodeID) (i2o.TID, error) {
	if node == e.opts.Node {
		node = i2o.NodeNone
	}
	if entry, ok := e.table.Resolve(class, instance, node); ok {
		return entry.TID, nil
	}
	if node == i2o.NodeNone {
		return i2o.TIDNone, fmt.Errorf("%w: %s[%d] local", tid.ErrUnknown, class, instance)
	}
	return i2o.TIDNone, fmt.Errorf("%w: %s[%d]@%v (run Discover first)", tid.ErrUnknown, class, instance, node)
}

// ExecProxy returns (creating if necessary) the local proxy for the remote
// node's executive.  Every IOP's executive is at the well-known TiD 1, so
// this needs only a system table route.
func (e *Executive) ExecProxy(node i2o.NodeID) (i2o.TID, error) {
	route, ok := e.Route(node)
	if !ok {
		return i2o.TIDNone, fmt.Errorf("%w: node %v not in system table", ErrNoRoute, node)
	}
	if entry, ok := e.table.Resolve("@exec", 0, node); ok {
		return entry.TID, nil
	}
	entry, err := e.table.AllocProxy("@exec", 0, node, route, i2o.TIDExecutive)
	if err != nil {
		if entry, ok := e.table.Resolve("@exec", 0, node); ok {
			return entry.TID, nil
		}
		return i2o.TIDNone, err
	}
	return entry.TID, nil
}

// Discover queries the remote node's hardware resource table for
// (class, instance), creates a local proxy for it and returns the proxy
// TiD.  This is the paper's "[the module] will also request the
// availability of other device class instances on remote IOPs and
// triggers the creation of proxy TiDs".
func (e *Executive) Discover(node i2o.NodeID, class string, instance int) (i2o.TID, error) {
	if entry, ok := e.table.Resolve(class, instance, node); ok {
		return entry.TID, nil
	}
	execTID, err := e.ExecProxy(node)
	if err != nil {
		return i2o.TIDNone, err
	}
	route, _ := e.Route(node)

	req := &i2o.Message{
		Priority:  i2o.PriorityHigh,
		Target:    execTID,
		Initiator: i2o.TIDExecutive,
		Function:  i2o.ExecHrtGet,
	}
	rep, err := e.Request(req)
	if err != nil {
		return i2o.TIDNone, fmt.Errorf("executive: discover on %v: %w", node, err)
	}
	defer rep.Release()
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		return i2o.TIDNone, err
	}
	want := hrtKey(class, instance)
	for _, p := range params {
		if p.Key != want {
			continue
		}
		remote, ok := p.Value.(int64)
		if !ok || !i2o.TID(remote).Valid() {
			return i2o.TIDNone, fmt.Errorf("executive: bad HRT entry %q=%v", p.Key, p.Value)
		}
		entry, err := e.table.AllocProxy(class, instance, node, route, i2o.TID(remote))
		if err != nil {
			if entry, ok := e.table.Resolve(class, instance, node); ok {
				return entry.TID, nil
			}
			return i2o.TIDNone, err
		}
		return entry.TID, nil
	}
	return i2o.TIDNone, fmt.Errorf("%w: %s[%d] not in HRT of %v", tid.ErrUnknown, class, instance, node)
}

// hrtKey encodes one resource table row key.
func hrtKey(class string, instance int) string {
	return fmt.Sprintf("%s#%d", class, instance)
}
