package executive

import (
	"sync"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// The watchdog machinery used to cost one goroutine spawn and one
// time.NewTimer per dispatched frame.  This file replaces both with pools:
// wdRunner is a long-lived handler-runner goroutine the dispatch workers
// borrow per frame, and acquireTimer/releaseTimer recycle timers.  The
// runner pool is an explicit free list rather than a sync.Pool because a
// dropped sync.Pool entry would silently leak its goroutine; the explicit
// list lets Close terminate every idle runner.

// wdJob is one handler invocation handed to a runner.
type wdJob struct {
	d   *device.Device
	h   device.Handler
	ctx *device.Context
	m   *i2o.Message
}

// wdRunner is one reusable handler-runner goroutine.  in is unbuffered (a
// borrowed runner is always ready to receive); done is buffered so a
// runner whose watchdog expired can finish its stuck handler and park the
// result without blocking until the reaper collects it.
type wdRunner struct {
	e    *Executive
	in   chan wdJob
	done chan error
}

func (r *wdRunner) loop() {
	for j := range r.in {
		r.done <- r.e.safeCall(j.d, j.h, j.ctx, j.m)
	}
}

// maxIdleRunners bounds the free list; surplus runners returned beyond it
// are terminated.  Idle runners cost only a parked goroutine, so the bound
// merely caps the burst high-water mark.
const maxIdleRunners = 64

// runnerPool is the free list of idle watchdog runners.
type runnerPool struct {
	mu     sync.Mutex
	free   []*wdRunner
	closed bool
}

func (p *runnerPool) get(e *Executive) *wdRunner {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return r
	}
	p.mu.Unlock()
	r := &wdRunner{e: e, in: make(chan wdJob), done: make(chan error, 1)}
	go r.loop()
	return r
}

func (p *runnerPool) put(r *wdRunner) {
	p.mu.Lock()
	if p.closed || len(p.free) >= maxIdleRunners {
		p.mu.Unlock()
		close(r.in)
		return
	}
	p.free = append(p.free, r)
	p.mu.Unlock()
}

func (p *runnerPool) close() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.closed = true
	p.mu.Unlock()
	for _, r := range free {
		close(r.in)
	}
}

// idle reports the current free-list depth (tests use it to show reuse).
func (p *runnerPool) idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// timerPool recycles watchdog and request-timeout timers.  Safe since Go
// 1.23: Reset on an expired, undrained timer discards any stale value, so
// a pooled timer cannot fire with a previous deadline.
var timerPool sync.Pool

func acquireTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func releaseTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}
