package executive

import (
	"fmt"
	"strconv"
	"strings"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/tid"
)

// newSelfDevice builds the executive's own device module: the handlers
// behind the executive function codes.  "All modules, user applications,
// the peer transports and even the executive get such a TiD.  Thus, they
// are all valid I2O devices and have to implement the standard executive
// and utility message handlers to be configurable and controllable."
func newSelfDevice(e *Executive) *device.Device {
	d := device.New("executive", 0)
	d.Params().Set("name", e.opts.Name)
	d.Params().Set("node", int64(e.opts.Node))
	d.Params().OnSet(func(changed []i2o.Param) {
		// Remote actuation of the dispatcher count: a UtilParamsSet on
		// the executive device with a "dispatchers" key rescales the
		// worker pool, the knob the control-plane autopilot turns over
		// the wire (doc/control-plane.md).
		for _, p := range changed {
			if p.Key != "dispatchers" {
				continue
			}
			if n, ok := p.Value.(int64); ok && n > 0 {
				e.SetDispatchers(int(n))
			}
		}
	})

	d.BindFunction(i2o.ExecStatusGet, e.handleStatusGet)
	d.BindFunction(i2o.ExecHrtGet, e.handleHrtGet)
	d.BindFunction(i2o.ExecPlugin, e.handlePlugin)
	d.BindFunction(i2o.ExecUnplug, e.handleUnplug)
	d.BindFunction(i2o.ExecSysEnable, e.handleSysEnable)
	d.BindFunction(i2o.ExecSysQuiesce, e.handleSysQuiesce)
	d.BindFunction(i2o.ExecSysClear, e.handleSysClear)
	d.BindFunction(i2o.ExecSysTabSet, e.handleSysTabSet)
	d.BindFunction(i2o.ExecTimerSet, e.handleTimerSet)
	d.BindFunction(i2o.ExecTimerCancel, e.handleTimerCancel)
	d.BindFunction(i2o.ExecTraceGet, e.handleTraceGet)
	d.BindFunction(i2o.ExecMetricsGet, e.handleMetricsGet)
	d.BindFunction(i2o.ExecPing, func(ctx *device.Context, m *i2o.Message) error {
		// The liveness probe: an empty success reply is the whole answer.
		// Reaching here proves route, agent and dispatch loop are alive.
		return device.ReplyIfExpected(ctx, m, nil)
	})
	d.BindFunction(i2o.ExecHealthGet, e.handleHealthGet)
	d.BindFunction(i2o.ExecPolicyGet, e.handlePolicyGet)
	d.BindFunction(i2o.ExecJoin, e.handleMembership)
	d.BindFunction(i2o.ExecPeerList, e.handleMembership)
	d.BindFunction(i2o.ExecOutboundInit, func(ctx *device.Context, m *i2o.Message) error {
		// Queues are initialized at construction; the code exists so hosts
		// following the I2O bring-up sequence get a success reply.
		return device.ReplyIfExpected(ctx, m, nil)
	})
	return d
}

func (e *Executive) handleStatusGet(ctx *device.Context, m *i2o.Message) error {
	s := e.Stats()
	params := []i2o.Param{
		{Key: "name", Value: e.opts.Name},
		{Key: "node", Value: int64(e.opts.Node)},
		{Key: "state", Value: e.State().String()},
		{Key: "devices", Value: int64(len(e.Devices()))},
		{Key: "queue", Value: int64(e.QueueLen())},
		{Key: "allocator", Value: e.alloc.Name()},
		{Key: "dispatched", Value: s.Dispatched},
		{Key: "forwarded", Value: s.Forwarded},
		{Key: "replies", Value: s.Replies},
		{Key: "failures", Value: s.Failures},
		{Key: "dropped", Value: s.Dropped},
	}
	i2o.SortParams(params)
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	return device.ReplyIfExpected(ctx, m, payload)
}

func (e *Executive) handleHrtGet(ctx *device.Context, m *i2o.Message) error {
	var params []i2o.Param
	for _, entry := range e.table.Entries() {
		if entry.Kind != tid.Local { // proxies are not part of this IOP's own HRT
			continue
		}
		params = append(params, i2o.Param{
			Key:   hrtKey(entry.Class, entry.Instance),
			Value: int64(entry.TID),
		})
	}
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	return device.ReplyIfExpected(ctx, m, payload)
}

func (e *Executive) handlePlugin(ctx *device.Context, m *i2o.Message) error {
	params, err := i2o.DecodeParams(m.Payload)
	if err != nil {
		return err
	}
	var module string
	instance := 0
	for _, p := range params {
		switch p.Key {
		case "module":
			if s, ok := p.Value.(string); ok {
				module = s
			}
		case "instance":
			if n, ok := p.Value.(int64); ok {
				instance = int(n)
			}
		}
	}
	if module == "" {
		return fmt.Errorf("%w: plugin request without module name", i2o.ErrTruncated)
	}
	d, err := Instantiate(module, instance, params)
	if err != nil {
		return err
	}
	id, err := e.Plug(d)
	if err != nil {
		return err
	}
	payload, err := i2o.EncodeParams([]i2o.Param{{Key: "tid", Value: int64(id)}})
	if err != nil {
		return err
	}
	return device.ReplyIfExpected(ctx, m, payload)
}

func (e *Executive) handleUnplug(ctx *device.Context, m *i2o.Message) error {
	params, err := i2o.DecodeParams(m.Payload)
	if err != nil {
		return err
	}
	for _, p := range params {
		if p.Key == "tid" {
			if n, ok := p.Value.(int64); ok {
				if err := e.Unplug(i2o.TID(n)); err != nil {
					return err
				}
				return device.ReplyIfExpected(ctx, m, nil)
			}
		}
	}
	return fmt.Errorf("%w: unplug request without tid", i2o.ErrTruncated)
}

// setAllStates drives the IOP-level state transitions: an executive-level
// enable or quiesce applies to every registered device module.
func (e *Executive) setAllStates(s device.State) {
	e.state.Store(int32(s))
	for _, d := range e.Devices() {
		if d == e.self {
			continue
		}
		if d.State() != device.Faulted {
			d.SetState(s)
		}
	}
}

func (e *Executive) handleSysEnable(ctx *device.Context, m *i2o.Message) error {
	e.setAllStates(device.Operational)
	return device.ReplyIfExpected(ctx, m, nil)
}

func (e *Executive) handleSysQuiesce(ctx *device.Context, m *i2o.Message) error {
	e.setAllStates(device.Quiesced)
	return device.ReplyIfExpected(ctx, m, nil)
}

func (e *Executive) handleSysClear(ctx *device.Context, m *i2o.Message) error {
	e.nDispatched.Reset()
	e.nForwarded.Reset()
	e.nReplies.Reset()
	e.nFailures.Reset()
	e.nDropped.Reset()
	return device.ReplyIfExpected(ctx, m, nil)
}

// handleTraceGet controls and reads the frame tracer: optional "enable"
// and "reset" booleans in the request, the ring dump in the reply.
func (e *Executive) handleTraceGet(ctx *device.Context, m *i2o.Message) error {
	if len(m.Payload) > 0 {
		params, err := i2o.DecodeParams(m.Payload)
		if err != nil {
			return err
		}
		for _, p := range params {
			switch p.Key {
			case "enable":
				if b, ok := p.Value.(bool); ok {
					e.SetTrace(b)
				}
			case "reset":
				if b, ok := p.Value.(bool); ok && b {
					e.traceRing.Reset()
				}
			}
		}
	}
	out := []i2o.Param{
		{Key: "dump", Value: e.traceRing.Dump()},
		{Key: "enabled", Value: e.traceOn.Load()},
		{Key: "total", Value: e.traceRing.Total()},
	}
	payload, err := i2o.EncodeParams(out)
	if err != nil {
		return err
	}
	return device.ReplyIfExpected(ctx, m, payload)
}

// handleMetricsGet answers a remote scrape: every metric in the node's
// registry, flattened to scalar rows and encoded as an ordinary parameter
// list, so `xdaqctl metrics <node>` sees the same numbers a local
// Snapshot would.  An optional "prefix" string restricts the reply.
func (e *Executive) handleMetricsGet(ctx *device.Context, m *i2o.Message) error {
	prefix := ""
	if len(m.Payload) > 0 {
		params, err := i2o.DecodeParams(m.Payload)
		if err != nil {
			return err
		}
		for _, p := range params {
			if p.Key == "prefix" {
				if s, ok := p.Value.(string); ok {
					prefix = s
				}
			}
		}
	}
	var out []i2o.Param
	for _, fs := range metrics.Flatten(e.reg.Snapshot()) {
		if prefix != "" && !strings.HasPrefix(fs.Name, prefix) {
			continue
		}
		p := i2o.Param{Key: fs.Name}
		if fs.IsUint {
			p.Value = fs.Uint
		} else {
			p.Value = fs.Int
		}
		out = append(out, p)
	}
	payload, err := i2o.EncodeParams(out)
	if err != nil {
		return err
	}
	return device.ReplyIfExpected(ctx, m, payload)
}

// handleHealthGet answers a remote liveness query with the health
// monitor's report, or a single "monitor=off" row when no monitor is
// installed on this node.
func (e *Executive) handleHealthGet(ctx *device.Context, m *i2o.Message) error {
	e.healthMu.RLock()
	source := e.healthSource
	e.healthMu.RUnlock()
	var params []i2o.Param
	if source == nil {
		params = []i2o.Param{{Key: "monitor", Value: "off"}}
	} else {
		params = source()
	}
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	return device.ReplyIfExpected(ctx, m, payload)
}

// handlePolicyGet answers a remote control-plane query with the
// autopilot's report — policy identity, tick count, decision log — or a
// single "autopilot=off" row when no controller runs on this node.
func (e *Executive) handlePolicyGet(ctx *device.Context, m *i2o.Message) error {
	e.policyMu.RLock()
	source := e.policySource
	e.policyMu.RUnlock()
	var params []i2o.Param
	if source == nil {
		params = []i2o.Param{{Key: "autopilot", Value: "off"}}
	} else {
		params = source()
	}
	payload, err := i2o.EncodeParams(params)
	if err != nil {
		return err
	}
	return device.ReplyIfExpected(ctx, m, payload)
}

// handleMembership forwards ExecJoin and ExecPeerList frames to the
// installed membership manager (see SetMembershipHandler).  A node with
// no manager fails the request — a joiner dialing a non-cluster node gets
// a clean failure reply instead of a timeout.
func (e *Executive) handleMembership(ctx *device.Context, m *i2o.Message) error {
	e.memberMu.RLock()
	hook := e.memberHook
	e.memberMu.RUnlock()
	if hook == nil {
		return fmt.Errorf("executive: %v: no membership manager on node %v", m.Function, e.Node())
	}
	params, err := i2o.DecodeParams(m.Payload)
	if err != nil {
		return err
	}
	out, err := hook(m.Function, params)
	if err != nil {
		return err
	}
	var payload []byte
	if len(out) > 0 {
		if payload, err = i2o.EncodeParams(out); err != nil {
			return err
		}
	}
	return device.ReplyIfExpected(ctx, m, payload)
}

func (e *Executive) handleSysTabSet(ctx *device.Context, m *i2o.Message) error {
	params, err := i2o.DecodeParams(m.Payload)
	if err != nil {
		return err
	}
	for _, p := range params {
		node, err := strconv.ParseUint(p.Key, 10, 32)
		if err != nil {
			return fmt.Errorf("executive: system table key %q: %w", p.Key, err)
		}
		route, ok := p.Value.(string)
		if !ok {
			return fmt.Errorf("executive: system table entry %q is %T, want string", p.Key, p.Value)
		}
		// FailoverRoute rather than SetRoute: a remote system-table write
		// must also repoint existing proxies, or a mid-run reroute (the
		// autopilot's GM→TCP failover actuation) would strand discovered
		// devices on the old fabric.  On a fresh table there are no
		// proxies and the two are identical.
		e.FailoverRoute(i2o.NodeID(node), route)
	}
	return device.ReplyIfExpected(ctx, m, nil)
}
