package executive

import (
	"fmt"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// XFuncTimerExpired is the private extended function code of the timer
// expiry event frames the executive delivers.  "Even interrupts or timer
// expirations trigger messages that are sent to device modules" (§3.2).
const XFuncTimerExpired uint16 = 0xFF01

// After arms an executive core timer: after d, a private frame with
// XFuncTimerExpired (carrying the given payload and the timer id as
// parameters) is injected for target.  It returns the timer id and a
// cancel function.
func (e *Executive) After(d time.Duration, target i2o.TID, payload []byte) (uint32, func() bool) {
	id := e.timerSeq.Add(1)
	t := time.AfterFunc(d, func() {
		e.timerMu.Lock()
		delete(e.timers, id)
		e.timerMu.Unlock()
		e.fireTimer(id, target, payload)
	})
	e.timerMu.Lock()
	e.timers[id] = t
	e.timerMu.Unlock()
	return id, func() bool { return e.CancelTimer(id) }
}

// CancelTimer disarms a timer; it reports whether the timer was still
// pending.
func (e *Executive) CancelTimer(id uint32) bool {
	e.timerMu.Lock()
	t, ok := e.timers[id]
	if ok {
		delete(e.timers, id)
	}
	e.timerMu.Unlock()
	return ok && t.Stop()
}

// fireTimer builds and injects the expiry event frame.
func (e *Executive) fireTimer(id uint32, target i2o.TID, payload []byte) {
	m := &i2o.Message{
		Priority:           i2o.PriorityHigh,
		Target:             target,
		Initiator:          i2o.TIDExecutive,
		Function:           i2o.FuncPrivate,
		Org:                i2o.OrgXDAQ,
		XFunction:          XFuncTimerExpired,
		TransactionContext: id,
		Payload:            payload,
	}
	if err := e.Send(m); err != nil {
		e.Logf("timer %d for %v undeliverable: %v", id, target, err)
	}
}

func (e *Executive) handleTimerSet(ctx *device.Context, m *i2o.Message) error {
	params, err := i2o.DecodeParams(m.Payload)
	if err != nil {
		return err
	}
	var (
		after   time.Duration
		payload []byte
	)
	target := m.Initiator
	for _, p := range params {
		switch p.Key {
		case "after_us":
			if n, ok := p.Value.(int64); ok {
				after = time.Duration(n) * time.Microsecond
			}
		case "payload":
			if b, ok := p.Value.([]byte); ok {
				payload = b
			}
		case "target":
			if n, ok := p.Value.(int64); ok {
				target = i2o.TID(n)
			}
		}
	}
	if after <= 0 {
		return fmt.Errorf("%w: timer request without positive after_us", i2o.ErrTruncated)
	}
	if !target.Valid() {
		return fmt.Errorf("executive: timer target %v invalid", target)
	}
	id, _ := e.After(after, target, payload)
	rep, err := i2o.EncodeParams([]i2o.Param{{Key: "timer", Value: int64(id)}})
	if err != nil {
		return err
	}
	return device.ReplyIfExpected(ctx, m, rep)
}

func (e *Executive) handleTimerCancel(ctx *device.Context, m *i2o.Message) error {
	params, err := i2o.DecodeParams(m.Payload)
	if err != nil {
		return err
	}
	for _, p := range params {
		if p.Key == "timer" {
			if n, ok := p.Value.(int64); ok {
				stopped := e.CancelTimer(uint32(n))
				rep, err := i2o.EncodeParams([]i2o.Param{{Key: "stopped", Value: stopped}})
				if err != nil {
					return err
				}
				return device.ReplyIfExpected(ctx, m, rep)
			}
		}
	}
	return fmt.Errorf("%w: cancel request without timer id", i2o.ErrTruncated)
}
