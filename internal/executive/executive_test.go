package executive

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/probe"
	"xdaq/internal/tid"
)

func quietOpts(name string, node i2o.NodeID) Options {
	return Options{
		Name:           name,
		Node:           node,
		RequestTimeout: 2 * time.Second,
		Logf:           func(string, ...any) {},
	}
}

func newExec(t *testing.T, name string, node i2o.NodeID) *Executive {
	t.Helper()
	e := New(quietOpts(name, node))
	t.Cleanup(e.Close)
	return e
}

// echoDevice replies to xfunc 1 with its request payload.
func echoDevice(instance int) *device.Device {
	d := device.New("echo", instance)
	d.Bind(1, func(ctx *device.Context, m *i2o.Message) error {
		return device.ReplyIfExpected(ctx, m, append([]byte(nil), m.Payload...))
	})
	return d
}

func TestSelfDeviceClaimsTID1(t *testing.T) {
	e := newExec(t, "a", 1)
	d, ok := e.Device(i2o.TIDExecutive)
	if !ok || d.Class() != "executive" {
		t.Fatalf("self device: %v %v", d, ok)
	}
	entry, ok := e.Table().Lookup(i2o.TIDExecutive)
	if !ok || entry.Class != "executive" {
		t.Fatalf("table entry %+v", entry)
	}
}

func TestPlugUnplug(t *testing.T) {
	e := newExec(t, "a", 1)
	d := echoDevice(0)
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	if d.TID() != id || d.State() != device.Operational {
		t.Fatalf("tid=%v state=%v", d.TID(), d.State())
	}
	if got, ok := e.Device(id); !ok || got != d {
		t.Fatal("Device lookup")
	}
	if len(e.Devices()) != 2 { // self + echo
		t.Fatalf("devices %d", len(e.Devices()))
	}
	if err := e.Unplug(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Device(id); ok {
		t.Fatal("device survives unplug")
	}
	if err := e.Unplug(id); err == nil {
		t.Fatal("double unplug")
	}
	if err := e.Unplug(i2o.TIDExecutive); err == nil {
		t.Fatal("unplugged the executive itself")
	}
	if _, ok := e.Device(i2o.TIDExecutive); !ok {
		t.Fatal("failed self-unplug removed the self device")
	}
}

func TestPlugFailureRollsBack(t *testing.T) {
	e := newExec(t, "a", 1)
	d := device.New("bad", 0)
	d.OnPlugged = func(*device.Context) error { return errors.New("nope") }
	if _, err := e.Plug(d); err == nil {
		t.Fatal("plug succeeded")
	}
	if e.Table().Len() != 1 {
		t.Fatalf("table len %d after failed plug", e.Table().Len())
	}
}

func TestRequestReplyRoundTrip(t *testing.T) {
	e := newExec(t, "a", 1)
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	req := &i2o.Message{
		Priority: i2o.PriorityNormal, Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: []byte("ping"),
	}
	rep, err := e.Request(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	if string(rep.Payload) != "ping" || !rep.Flags.Has(i2o.FlagReply) {
		t.Fatalf("reply %v %q", rep, rep.Payload)
	}
	s := e.Stats()
	if s.Dispatched == 0 || s.Replies != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRequestTimeout(t *testing.T) {
	e := newExec(t, "a", 1)
	d := device.New("sink", 0)
	d.Bind(1, func(*device.Context, *i2o.Message) error { return nil }) // never replies
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	req := &i2o.Message{
		Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	_, err = e.RequestTimeout(req, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout: %v", err)
	}
}

func TestRequestToUnknownFunctionFails(t *testing.T) {
	e := newExec(t, "a", 1)
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	req := &i2o.Message{
		Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 99,
	}
	_, err = e.Request(req)
	var rec *i2o.FailRecord
	if !errors.As(err, &rec) || rec.Code != i2o.FailUnknownFunction {
		t.Fatalf("err %v", err)
	}
}

func TestSendToUnknownTarget(t *testing.T) {
	e := newExec(t, "a", 1)
	m := &i2o.Message{Target: 0x500, Function: i2o.UtilNOP}
	if err := e.Send(m); !errors.Is(err, tid.ErrUnknown) {
		t.Fatalf("send: %v", err)
	}
}

func TestQuiescedDeviceRefusesPrivate(t *testing.T) {
	e := newExec(t, "a", 1)
	d := echoDevice(0)
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	d.SetState(device.Quiesced)
	req := &i2o.Message{
		Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	_, err = e.Request(req)
	var rec *i2o.FailRecord
	if !errors.As(err, &rec) || rec.Code != i2o.FailDeviceState {
		t.Fatalf("err %v", err)
	}
}

func TestPanicFaultsDevice(t *testing.T) {
	e := newExec(t, "a", 1)
	d := device.New("boom", 0)
	d.Bind(1, func(*device.Context, *i2o.Message) error { panic("kaboom") })
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	req := &i2o.Message{
		Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	_, err = e.Request(req)
	var rec *i2o.FailRecord
	if !errors.As(err, &rec) || rec.Code != i2o.FailAborted {
		t.Fatalf("err %v", err)
	}
	if d.State() != device.Faulted {
		t.Fatalf("state %v", d.State())
	}
}

func TestWatchdogTerminatesSlowHandler(t *testing.T) {
	opts := quietOpts("wd", 1)
	opts.Watchdog = 20 * time.Millisecond
	e := New(opts)
	defer e.Close()
	release := make(chan struct{})
	d := device.New("slow", 0)
	d.Bind(1, func(*device.Context, *i2o.Message) error {
		<-release
		return nil
	})
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	req := &i2o.Message{
		Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	_, err = e.Request(req)
	close(release)
	var rec *i2o.FailRecord
	if !errors.As(err, &rec) || rec.Code != i2o.FailAborted {
		t.Fatalf("err %v", err)
	}
	if d.State() != device.Faulted {
		t.Fatalf("state %v", d.State())
	}
}

// bridge wires executives directly, standing in for a peer transport.
type bridge struct {
	src   i2o.NodeID
	peers map[i2o.NodeID]*Executive
}

func (b *bridge) Forward(route string, dst i2o.NodeID, m *i2o.Message) error {
	p := b.peers[dst]
	if p == nil {
		m.Release()
		return fmt.Errorf("bridge: no peer %v", dst)
	}
	return p.InjectFrom(b.src, route, m)
}

// twoNodes builds executives on nodes 1 and 2 connected by bridges over a
// route named "bridge".
func twoNodes(t *testing.T) (*Executive, *Executive) {
	t.Helper()
	a := newExec(t, "a", 1)
	b := newExec(t, "b", 2)
	peers := map[i2o.NodeID]*Executive{1: a, 2: b}
	a.SetRouter(&bridge{src: 1, peers: peers})
	b.SetRouter(&bridge{src: 2, peers: peers})
	a.SetRoute(2, "bridge")
	b.SetRoute(1, "bridge")
	return a, b
}

func TestPeerOperationRequestReply(t *testing.T) {
	a, b := twoNodes(t)
	if _, err := b.Plug(echoDevice(0)); err != nil {
		t.Fatal(err)
	}
	remote, err := a.Discover(2, "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := a.Table().Lookup(remote)
	if !ok || entry.Kind != tid.Proxy || entry.Node != 2 {
		t.Fatalf("proxy entry %+v", entry)
	}
	req := &i2o.Message{
		Target: remote, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		Payload: []byte("cross-node"),
	}
	rep, err := a.Request(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	if string(rep.Payload) != "cross-node" {
		t.Fatalf("payload %q", rep.Payload)
	}
	if a.Stats().Forwarded == 0 || b.Stats().Dispatched == 0 {
		t.Fatalf("stats a=%+v b=%+v", a.Stats(), b.Stats())
	}
}

func TestDiscoverUnknownDevice(t *testing.T) {
	a, _ := twoNodes(t)
	if _, err := a.Discover(2, "nonexistent", 0); !errors.Is(err, tid.ErrUnknown) {
		t.Fatalf("discover: %v", err)
	}
}

func TestDiscoverIsIdempotent(t *testing.T) {
	a, b := twoNodes(t)
	if _, err := b.Plug(echoDevice(3)); err != nil {
		t.Fatal(err)
	}
	id1, err := a.Discover(2, "echo", 3)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := a.Discover(2, "echo", 3)
	if err != nil || id1 != id2 {
		t.Fatalf("ids %v %v err %v", id1, id2, err)
	}
}

func TestForwardWithoutRouter(t *testing.T) {
	e := newExec(t, "a", 1)
	entry, err := e.Table().AllocProxy("x", 0, 9, "nowhere", 5)
	if err != nil {
		t.Fatal(err)
	}
	m := &i2o.Message{Target: entry.TID, Function: i2o.UtilNOP}
	if err := e.Send(m); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("send: %v", err)
	}
}

func TestResolve(t *testing.T) {
	e := newExec(t, "a", 7)
	id, err := e.Plug(echoDevice(4))
	if err != nil {
		t.Fatal(err)
	}
	// Local resolution, by explicit node and by NodeNone.
	for _, node := range []i2o.NodeID{7, i2o.NodeNone} {
		got, err := e.Resolve("echo", 4, node)
		if err != nil || got != id {
			t.Fatalf("resolve node %v: %v %v", node, got, err)
		}
	}
	if _, err := e.Resolve("echo", 5, i2o.NodeNone); err == nil {
		t.Fatal("resolved missing instance")
	}
	if _, err := e.Resolve("echo", 4, 99); err == nil {
		t.Fatal("resolved undiscovered remote")
	}
}

func execRequest(t *testing.T, e *Executive, target i2o.TID, fn i2o.Function, payload []byte) *i2o.Message {
	t.Helper()
	rep, err := e.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: target, Initiator: i2o.TIDExecutive,
		Function: fn, Payload: payload,
	})
	if err != nil {
		t.Fatalf("request %v: %v", fn, err)
	}
	return rep
}

func TestExecStatusGet(t *testing.T) {
	e := newExec(t, "statusbox", 3)
	rep := execRequest(t, e, i2o.TIDExecutive, i2o.ExecStatusGet, nil)
	defer rep.Release()
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]any{}
	for _, p := range params {
		got[p.Key] = p.Value
	}
	if got["name"] != "statusbox" || got["node"] != int64(3) || got["state"] != "operational" {
		t.Fatalf("status %v", got)
	}
}

func TestExecHrtGet(t *testing.T) {
	e := newExec(t, "a", 1)
	id, err := e.Plug(echoDevice(2))
	if err != nil {
		t.Fatal(err)
	}
	rep := execRequest(t, e, i2o.TIDExecutive, i2o.ExecHrtGet, nil)
	defer rep.Release()
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range params {
		if p.Key == "echo#2" && p.Value == int64(id) {
			found = true
		}
		if strings.HasPrefix(p.Key, "@") {
			t.Fatalf("HRT leaked proxy entry %q", p.Key)
		}
	}
	if !found {
		t.Fatalf("HRT %v missing echo#2", params)
	}
}

func TestExecPluginAndUnplugMessages(t *testing.T) {
	RegisterModule("test.echo", func(instance int, _ []i2o.Param) (*device.Device, error) {
		return echoDevice(instance), nil
	})
	defer UnregisterModule("test.echo")

	e := newExec(t, "a", 1)
	payload, err := i2o.EncodeParams([]i2o.Param{
		{Key: "module", Value: "test.echo"},
		{Key: "instance", Value: int64(7)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := execRequest(t, e, i2o.TIDExecutive, i2o.ExecPlugin, payload)
	params, _ := i2o.DecodeParams(rep.Payload)
	rep.Release()
	if len(params) != 1 || params[0].Key != "tid" {
		t.Fatalf("plugin reply %v", params)
	}
	plugged := i2o.TID(params[0].Value.(int64))
	if _, ok := e.Device(plugged); !ok {
		t.Fatal("plugged device not registered")
	}

	unplug, _ := i2o.EncodeParams([]i2o.Param{{Key: "tid", Value: int64(plugged)}})
	rep = execRequest(t, e, i2o.TIDExecutive, i2o.ExecUnplug, unplug)
	rep.Release()
	if _, ok := e.Device(plugged); ok {
		t.Fatal("device survives ExecUnplug")
	}
}

func TestExecPluginUnknownModule(t *testing.T) {
	e := newExec(t, "a", 1)
	payload, _ := i2o.EncodeParams([]i2o.Param{{Key: "module", Value: "no.such"}})
	_, err := e.Request(&i2o.Message{
		Target: i2o.TIDExecutive, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecPlugin, Payload: payload,
	})
	if err == nil {
		t.Fatal("unknown module plugged")
	}
}

func TestExecSysQuiesceEnable(t *testing.T) {
	e := newExec(t, "a", 1)
	d := echoDevice(0)
	if _, err := e.Plug(d); err != nil {
		t.Fatal(err)
	}
	rep := execRequest(t, e, i2o.TIDExecutive, i2o.ExecSysQuiesce, nil)
	rep.Release()
	if e.State() != device.Quiesced || d.State() != device.Quiesced {
		t.Fatalf("states %v %v", e.State(), d.State())
	}
	rep = execRequest(t, e, i2o.TIDExecutive, i2o.ExecSysEnable, nil)
	rep.Release()
	if e.State() != device.Operational || d.State() != device.Operational {
		t.Fatalf("states %v %v", e.State(), d.State())
	}
}

func TestExecSysClearResetsStats(t *testing.T) {
	e := newExec(t, "a", 1)
	rep := execRequest(t, e, i2o.TIDExecutive, i2o.ExecStatusGet, nil)
	rep.Release()
	if e.Stats().Dispatched == 0 {
		t.Fatal("no activity recorded")
	}
	rep = execRequest(t, e, i2o.TIDExecutive, i2o.ExecSysClear, nil)
	rep.Release()
	// The clear request itself is dispatched after the reset, so the
	// counter is small but the pre-clear total is gone.
	if got := e.Stats().Dispatched; got > 2 {
		t.Fatalf("dispatched %d after clear", got)
	}
}

func TestExecSysTabSet(t *testing.T) {
	e := newExec(t, "a", 1)
	payload, _ := i2o.EncodeParams([]i2o.Param{
		{Key: "5", Value: "pt.tcp"},
		{Key: "6", Value: "pt.gm"},
	})
	rep := execRequest(t, e, i2o.TIDExecutive, i2o.ExecSysTabSet, payload)
	rep.Release()
	if r, ok := e.Route(5); !ok || r != "pt.tcp" {
		t.Fatalf("route 5: %v %v", r, ok)
	}
	if r, ok := e.Route(6); !ok || r != "pt.gm" {
		t.Fatalf("route 6: %v %v", r, ok)
	}

	bad, _ := i2o.EncodeParams([]i2o.Param{{Key: "notanode", Value: "x"}})
	if _, err := e.Request(&i2o.Message{
		Target: i2o.TIDExecutive, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecSysTabSet, Payload: bad,
	}); err == nil {
		t.Fatal("bad system table accepted")
	}
}

func TestExecOutboundInit(t *testing.T) {
	e := newExec(t, "a", 1)
	rep := execRequest(t, e, i2o.TIDExecutive, i2o.ExecOutboundInit, nil)
	rep.Release()
}

func TestTimerFiresEventFrame(t *testing.T) {
	e := newExec(t, "a", 1)
	fired := make(chan *i2o.Message, 1)
	d := device.New("timer-sink", 0)
	d.Bind(XFuncTimerExpired, func(ctx *device.Context, m *i2o.Message) error {
		fired <- &i2o.Message{TransactionContext: m.TransactionContext, Payload: append([]byte(nil), m.Payload...)}
		return nil
	})
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	timerID, _ := e.After(10*time.Millisecond, id, []byte("tick"))
	select {
	case m := <-fired:
		if m.TransactionContext != timerID || string(m.Payload) != "tick" {
			t.Fatalf("timer frame %v %q", m.TransactionContext, m.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("timer never fired")
	}
}

func TestTimerCancel(t *testing.T) {
	e := newExec(t, "a", 1)
	fired := make(chan struct{}, 1)
	d := device.New("timer-sink", 0)
	d.Bind(XFuncTimerExpired, func(*device.Context, *i2o.Message) error {
		fired <- struct{}{}
		return nil
	})
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	_, cancel := e.After(50*time.Millisecond, id, nil)
	if !cancel() {
		t.Fatal("cancel reported not pending")
	}
	select {
	case <-fired:
		t.Fatal("cancelled timer fired")
	case <-time.After(120 * time.Millisecond):
	}
	if cancel() {
		t.Fatal("second cancel succeeded")
	}
}

func TestTimerMessages(t *testing.T) {
	e := newExec(t, "a", 1)
	set, _ := i2o.EncodeParams([]i2o.Param{
		{Key: "after_us", Value: int64(3600 * 1e6)}, // far future; we cancel it
	})
	rep := execRequest(t, e, i2o.TIDExecutive, i2o.ExecTimerSet, set)
	params, _ := i2o.DecodeParams(rep.Payload)
	rep.Release()
	if len(params) != 1 || params[0].Key != "timer" {
		t.Fatalf("timer set reply %v", params)
	}
	cancel, _ := i2o.EncodeParams([]i2o.Param{{Key: "timer", Value: params[0].Value}})
	rep = execRequest(t, e, i2o.TIDExecutive, i2o.ExecTimerCancel, cancel)
	params, _ = i2o.DecodeParams(rep.Payload)
	rep.Release()
	if len(params) != 1 || params[0].Value != true {
		t.Fatalf("timer cancel reply %v", params)
	}
}

func TestAllocMessageAndFree(t *testing.T) {
	e := newExec(t, "a", 1)
	m, err := e.AllocMessage(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != 128 || m.Buffer() == nil {
		t.Fatalf("payload %d buffer %v", len(m.Payload), m.Buffer())
	}
	e.Free(m)
	if e.Allocator().Stats().InUse != 0 {
		t.Fatal("message buffer leaked")
	}
}

func TestZeroCopyRoundTripReleasesBuffers(t *testing.T) {
	e := newExec(t, "a", 1)
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m, err := e.AllocMessage(1024)
		if err != nil {
			t.Fatal(err)
		}
		m.Target = id
		m.Initiator = i2o.TIDExecutive
		m.XFunction = 1
		copy(m.Payload, "payload")
		rep, err := e.Request(m)
		if err != nil {
			t.Fatal(err)
		}
		rep.Release()
	}
	if in := e.Allocator().Stats().InUse; in != 0 {
		t.Fatalf("%d buffers leaked", in)
	}
}

func TestProbesCollectDuringDispatch(t *testing.T) {
	reg := &probe.Registry{}
	opts := quietOpts("probed", 1)
	opts.Probes = reg
	e := New(opts)
	defer e.Close()
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	probe.Enable(true)
	defer probe.Enable(false)
	req := &i2o.Message{
		Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}
	rep, err := e.Request(req)
	if err != nil {
		t.Fatal(err)
	}
	rep.Release()
	for _, name := range []string{"exec.demux", "exec.upcall", "exec.app", "exec.release"} {
		if reg.Point(name).Stats().Count == 0 {
			t.Fatalf("probe %s collected nothing", name)
		}
	}
}

func TestCloseIsIdempotentAndDrains(t *testing.T) {
	e := New(quietOpts("a", 1))
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.AllocMessage(64)
	if err != nil {
		t.Fatal(err)
	}
	m.Target = id
	m.XFunction = 1
	// Close the executive; a queued frame may or may not be dispatched
	// before the loop stops, but its buffer must be released either way.
	if err := e.Send(m); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if in := e.Allocator().Stats().InUse; in != 0 {
		t.Fatalf("%d buffers leaked at close", in)
	}
	if err := e.Send(&i2o.Message{Target: id, Function: i2o.UtilNOP}); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestModulesRegistry(t *testing.T) {
	RegisterModule("zz.mod", func(int, []i2o.Param) (*device.Device, error) {
		return device.New("zz", 0), nil
	})
	defer UnregisterModule("zz.mod")
	found := false
	for _, name := range Modules() {
		if name == "zz.mod" {
			found = true
		}
	}
	if !found {
		t.Fatal("module not listed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		RegisterModule("zz.mod", nil)
	}()
	if _, err := Instantiate("missing", 0, nil); err == nil {
		t.Fatal("instantiate missing module")
	}
}
