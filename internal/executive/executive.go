// Package executive implements the XDAQ I2O executive: the per-node
// runtime that owns the address table, the buffer pool and the inbound
// frame scheduler, and dispatches every message to the device modules
// registered with it (§4 of the paper).
//
// The executive is deliberately lean — "after all, the executive is very
// lean as it acts only as a delegate": by default one dispatch goroutine
// pops frames from the seven-priority scheduler and upcalls the target
// device's handler, exactly the paper's loop of control.  Options.
// Dispatchers > 1 opts into the parallel engine: N workers drain the same
// scheduler under per-device exclusive checkout, keeping the I2O
// discipline (strict priority, per-device FIFO, one in-flight frame per
// device) while spreading distinct devices across cores.  There is no
// thread per active object; peer transports in task mode have their own
// goroutines but only post frames to the inbound queue.  The executive is itself an I2O device: it claims TiD 1, answers
// the executive function codes (status, resource table, plug/unplug,
// enable/quiesce, timers, system table) and is configured through the very
// message format it dispatches.
package executive

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
	"xdaq/internal/pool"
	"xdaq/internal/probe"
	"xdaq/internal/queue"
	"xdaq/internal/tid"
	"xdaq/internal/trace"
)

// Router forwards frames addressed to proxy entries toward remote IOPs.
// It is implemented by the peer transport agent; the indirection keeps the
// executive free of transport knowledge, exactly as peer transports are
// "ordinary device classes" to it.
type Router interface {
	Forward(route string, dst i2o.NodeID, m *i2o.Message) error
}

// Options configures an executive.
type Options struct {
	// Name tags log lines and status reports; defaults to "xdaq".
	Name string

	// Node is this IOP's identity in the distributed system.
	Node i2o.NodeID

	// Allocator is the frame buffer pool; defaults to the optimized
	// table-based scheme.  Pass a pool.Fixed to reproduce the paper's
	// original allocator.
	Allocator pool.Allocator

	// QueueCapacity bounds the inbound scheduler; 0 means unbounded.
	QueueCapacity int

	// RequestTimeout bounds synchronous Request calls; defaults to 5s.
	RequestTimeout time.Duration

	// Watchdog, when positive, bounds handler execution time.  A handler
	// exceeding it is abandoned, its device is faulted, and the initiator
	// receives a FailAborted reply (§4: a misbehaving handler would
	// otherwise stall the round-robin loop).  Zero runs handlers inline on
	// the dispatch goroutine — the efficient configuration measured in the
	// paper.
	Watchdog time.Duration

	// Dispatchers is the number of parallel dispatch workers; 0 or 1 runs
	// the paper's single loop of control with byte-identical scheduling.
	// With N > 1 the I2O discipline still holds — strict priority across
	// levels, FIFO per target device, at most one in-flight frame per
	// device — but distinct devices dispatch concurrently, so handlers
	// written for the single loop need no new locking.  Reconfigurable at
	// runtime through SetDispatchers.
	Dispatchers int

	// DispatchBatch caps how many frames one worker drains from the
	// scheduler per lock acquisition.  0 (the default) drains one frame
	// per visit: priority is re-evaluated between every frame, exactly as
	// the paper's loop, and with parallel dispatchers a slow handler never
	// delays frames for other devices.  Values above 1 amortize the
	// scheduler lock for throughput at the cost of that isolation — a
	// worker dispatches its claimed batch in order, so frames late in a
	// batch wait on the handlers before them.
	DispatchBatch int

	// Probes receives the whitebox timing samples; defaults to
	// probe.Default.  Collection only happens while probe.Enable(true).
	Probes *probe.Registry

	// Metrics receives the node's operational counters (dispatch counts,
	// queue depths, transport frame/byte counts).  Defaults to a fresh
	// registry per executive, so a process hosting several nodes exports
	// per-node numbers; pass metrics.Default to share the process-wide
	// registry instead.
	Metrics *metrics.Registry

	// Logf sinks diagnostics; defaults to the standard logger.
	Logf func(format string, args ...any)
}

// Stats counts executive activity.
type Stats struct {
	Dispatched uint64 // frames upcalled to local devices
	Forwarded  uint64 // frames routed to remote IOPs
	Replies    uint64 // replies matched to pending requests
	Failures   uint64 // failure replies generated
	Dropped    uint64 // frames discarded (no reply expected, undeliverable)
}

// Executive is one IOP runtime.
type Executive struct {
	opts  Options
	table *tid.Table
	alloc pool.Allocator
	in    *queue.Sched

	mu      sync.RWMutex
	devices map[i2o.TID]*device.Device
	routes  map[i2o.NodeID]string
	router  Router

	pendMu  sync.Mutex
	pending map[uint32]*pendingReq
	ctxSeq  atomic.Uint32

	downMu    sync.RWMutex
	downPeers map[i2o.NodeID]struct{}

	healthMu     sync.RWMutex
	healthSource func() []i2o.Param

	memberMu   sync.RWMutex
	memberHook func(fn i2o.Function, params []i2o.Param) ([]i2o.Param, error)

	policyMu     sync.RWMutex
	policySource func() []i2o.Param

	timerMu  sync.Mutex
	timers   map[uint32]*time.Timer
	timerSeq atomic.Uint32

	self  *device.Device
	state atomic.Int32 // device.State of the whole IOP

	reg         *metrics.Registry
	nDispatched *metrics.Counter
	nForwarded  *metrics.Counter
	nReplies    *metrics.Counter
	nFailures   *metrics.Counter
	nDropped    *metrics.Counter
	nBatches    *metrics.Counter

	pDemux     *probe.Point
	pUpcall    *probe.Point
	pApp       *probe.Point
	pRelease   *probe.Point
	pFrameAloc *probe.Point
	pFrameFree *probe.Point

	traceOn   atomic.Bool
	traceRing *trace.Ring

	// Dispatch worker bookkeeping.  dispWant is the configured worker
	// count, dispLive the number currently running (they converge: surplus
	// workers retire themselves via a CAS on dispLive after the scheduler
	// bounces them with Interrupt), dispBusy how many are mid-batch.
	dispMu     sync.Mutex
	dispClosed bool
	dispWant   atomic.Int32
	dispLive   atomic.Int32
	dispBusy   atomic.Int32
	dispWG     sync.WaitGroup

	// runners is the reusable watchdog handler-runner pool (see
	// watchdog.go): with Watchdog > 0, dispatching borrows a runner
	// goroutine instead of spawning one per frame.
	runners runnerPool

	closeOnce sync.Once
}

// Errors.
var (
	// ErrClosed reports use of a closed executive.
	ErrClosed = errors.New("executive: closed")

	// ErrNoRoute reports a forward with no system table entry or router.
	ErrNoRoute = errors.New("executive: no route")

	// ErrTimeout reports an expired synchronous request.
	ErrTimeout = errors.New("executive: request timed out")

	// ErrPeerDown reports a frame refused — or a pending request failed —
	// because the health monitor has marked the target's node down.
	// Callers see it immediately instead of waiting out a timeout.
	ErrPeerDown = errors.New("executive: peer down")
)

// pendingReq tracks one outstanding synchronous request: the reply channel
// the dispatcher fills, a failure channel the health layer can trip, and
// the destination node (NodeNone for local targets) so a peer-down sweep
// can find the requests it strands.
type pendingReq struct {
	ch   chan *i2o.Message
	fail chan error
	node i2o.NodeID
}

// pendingPool recycles pendingReq slots and their channels across Request
// calls: the request hot path allocates neither.  Ownership discipline
// guards against late replies landing in a reused slot — only the party
// that removed the map entry under pendMu may deliver, and the waiter only
// recycles a slot proven quiescent (it consumed the delivery, or its own
// dropPending removed the entry so no delivery will ever come).
var pendingPool = sync.Pool{New: func() any {
	return &pendingReq{ch: make(chan *i2o.Message, 1), fail: make(chan error, 1)}
}}

func getPending(node i2o.NodeID) *pendingReq {
	p := pendingPool.Get().(*pendingReq)
	p.node = node
	return p
}

// putPending returns a quiescent slot to the pool.  The drains are belt
// and braces: under the ownership discipline both channels are already
// empty.
func putPending(p *pendingReq) {
	select {
	case rep, ok := <-p.ch:
		if ok && rep != nil {
			rep.Recycle()
		}
		if !ok {
			return // closed channel: the slot is dead, never reuse it
		}
	default:
	}
	select {
	case <-p.fail:
	default:
	}
	pendingPool.Put(p)
}

// New creates and starts an executive.  The dispatch loop runs until Close.
func New(opts Options) *Executive {
	if opts.Name == "" {
		opts.Name = "xdaq"
	}
	if opts.Allocator == nil {
		opts.Allocator = pool.NewTable(0)
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.Probes == nil {
		opts.Probes = probe.Default
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if opts.Logf == nil {
		logger := log.Default()
		name := opts.Name
		opts.Logf = func(format string, args ...any) {
			logger.Printf("["+name+"] "+format, args...)
		}
	}
	e := &Executive{
		opts:      opts,
		table:     tid.NewTable(),
		alloc:     opts.Allocator,
		in:        queue.NewSched(opts.QueueCapacity),
		devices:   make(map[i2o.TID]*device.Device),
		routes:    make(map[i2o.NodeID]string),
		pending:   make(map[uint32]*pendingReq),
		downPeers: make(map[i2o.NodeID]struct{}),
		timers:    make(map[uint32]*time.Timer),

		reg:         opts.Metrics,
		nDispatched: opts.Metrics.Counter("exec.dispatched"),
		nForwarded:  opts.Metrics.Counter("exec.forwarded"),
		nReplies:    opts.Metrics.Counter("exec.replies"),
		nFailures:   opts.Metrics.Counter("exec.failures"),
		nDropped:    opts.Metrics.Counter("exec.dropped"),
		nBatches:    opts.Metrics.Counter("exec.dispatch.batches"),

		pDemux:     opts.Probes.Point("exec.demux"),
		pUpcall:    opts.Probes.Point("exec.upcall"),
		pApp:       opts.Probes.Point("exec.app"),
		pRelease:   opts.Probes.Point("exec.release"),
		pFrameAloc: opts.Probes.Point("pool.frameAlloc"),
		pFrameFree: opts.Probes.Point("pool.frameFree"),

		traceRing: trace.NewRing(0),
	}
	e.state.Store(int32(device.Operational))
	e.registerMetrics()

	e.self = newSelfDevice(e)
	entry, err := e.table.Claim(i2o.TIDExecutive, "executive", 0)
	if err != nil {
		panic("executive: cannot claim TiD 1 on a fresh table: " + err.Error())
	}
	e.mu.Lock()
	e.devices[entry.TID] = e.self
	e.mu.Unlock()
	if err := e.self.Plugged(e, entry.TID); err != nil {
		panic("executive: self plug failed: " + err.Error())
	}
	e.self.SetState(device.Operational)

	e.SetDispatchers(opts.Dispatchers)
	return e
}

// SetDispatchers reconfigures the number of parallel dispatch workers at
// runtime (n < 1 is clamped to 1).  Growing spawns workers immediately;
// shrinking interrupts the scheduler so surplus workers retire after their
// current batch.  Frames never stall during either transition.
func (e *Executive) SetDispatchers(n int) {
	if n < 1 {
		n = 1
	}
	e.dispMu.Lock()
	defer e.dispMu.Unlock()
	if e.dispClosed {
		return
	}
	e.dispWant.Store(int32(n))
	for int(e.dispLive.Load()) < n {
		e.dispLive.Add(1)
		e.dispWG.Add(1)
		go e.dispatchWorker()
	}
	if int(e.dispLive.Load()) > n {
		e.in.Interrupt()
	}
}

// Dispatchers returns the configured dispatch worker count.
func (e *Executive) Dispatchers() int { return int(e.dispWant.Load()) }

// batchSize is the per-lock drain limit a worker uses.  The default of 1
// reproduces the paper's loop exactly (priority re-evaluated between every
// frame) and keeps parallel workers from claiming frames they cannot
// dispatch yet — a batch is dispatched in order by one worker, so any
// frame after a slow handler would wait on it.
func (e *Executive) batchSize() int {
	if e.opts.DispatchBatch > 0 {
		return e.opts.DispatchBatch
	}
	return 1
}

// registerMetrics publishes the executive's sampled gauges and installs
// the per-priority queue wait-time observer.  Sampled gauges surface
// values other subsystems already maintain (scheduler depths, pool
// statistics) without adding anything to their hot paths; the wait-time
// histograms only collect while metrics.Enable(true), the same gating
// discipline as the whitebox probes.
func (e *Executive) registerMetrics() {
	e.reg.Func("exec.queue.depth", func() int64 { return int64(e.in.Len()) })
	for p := 0; p < i2o.NumPriorities; p++ {
		prio := i2o.Priority(p)
		e.reg.Func(fmt.Sprintf("exec.queue.depth.p%d", p), func() int64 {
			return int64(e.in.LevelLen(prio))
		})
	}
	e.reg.Func("exec.devices", func() int64 { return int64(len(e.Devices())) })

	e.reg.Func("exec.dispatchers", func() int64 { return int64(e.dispWant.Load()) })
	e.reg.Func("exec.dispatchers.live", func() int64 { return int64(e.dispLive.Load()) })
	e.reg.Func("exec.dispatchers.busy", func() int64 { return int64(e.dispBusy.Load()) })

	e.reg.Func("pool.allocs", func() int64 { return int64(e.alloc.Stats().Allocs) })
	e.reg.Func("pool.fails", func() int64 { return int64(e.alloc.Stats().Fails) })
	e.reg.Func("pool.frees", func() int64 { return int64(e.alloc.Stats().Recycles) })
	e.reg.Func("pool.grows", func() int64 { return int64(e.alloc.Stats().Grows) })
	e.reg.Func("pool.inuse", func() int64 { return e.alloc.Stats().InUse })
	e.reg.Func("pool.highwater", func() int64 { return e.alloc.Stats().HighWater })

	var waits [i2o.NumPriorities]*metrics.Histogram
	for p := range waits {
		waits[p] = e.reg.Histogram(fmt.Sprintf("exec.queue.wait.p%d", p))
	}
	e.in.SetWaitObserver(func(p i2o.Priority, d time.Duration) {
		waits[p].Observe(d)
	})
}

// Metrics exposes the node's metrics registry (for the HTTP endpoint and
// for wiring transports created outside the executive).
func (e *Executive) Metrics() *metrics.Registry { return e.reg }

// Name returns the executive's configured name.
func (e *Executive) Name() string { return e.opts.Name }

// Node implements device.Host.
func (e *Executive) Node() i2o.NodeID { return e.opts.Node }

// Logf implements device.Host.
func (e *Executive) Logf(format string, args ...any) { e.opts.Logf(format, args...) }

// Allocator exposes the frame pool (benchmarks compare allocators).
func (e *Executive) Allocator() pool.Allocator { return e.alloc }

// Table exposes the address table for inspection.
func (e *Executive) Table() *tid.Table { return e.table }

// Stats returns a snapshot of dispatch counters.
func (e *Executive) Stats() Stats {
	return Stats{
		Dispatched: e.nDispatched.Value(),
		Forwarded:  e.nForwarded.Value(),
		Replies:    e.nReplies.Value(),
		Failures:   e.nFailures.Value(),
		Dropped:    e.nDropped.Value(),
	}
}

// QueueLen returns the inbound backlog.
func (e *Executive) QueueLen() int { return e.in.Len() }

// PendingRequests returns the number of outstanding correlated requests —
// entries in the pending-reply table waiting for a reply, timeout, or
// failure.  A quiescent executive reports zero; the chaos harness asserts
// exactly that after every storm drains.
func (e *Executive) PendingRequests() int {
	e.pendMu.Lock()
	n := len(e.pending)
	e.pendMu.Unlock()
	return n
}

// SetTrace switches the frame tracer on or off.  Remote operators use the
// ExecTraceGet message instead.
func (e *Executive) SetTrace(on bool) { e.traceOn.Store(on) }

// TraceRing exposes the trace buffer for local inspection.
func (e *Executive) TraceRing() *trace.Ring { return e.traceRing }

// traceFrame records one frame event when tracing is enabled.
func (e *Executive) traceFrame(kind trace.Kind, m *i2o.Message) {
	if e.traceOn.Load() {
		e.traceRing.Add(trace.Of(kind, m))
	}
}

// State returns the IOP-level operational state.
func (e *Executive) State() device.State { return device.State(e.state.Load()) }

// SetRouter installs the peer transport agent.
func (e *Executive) SetRouter(r Router) {
	e.mu.Lock()
	e.router = r
	e.mu.Unlock()
}

// SetRoute installs one system table entry: frames for node travel over the
// named peer transport route.
func (e *Executive) SetRoute(node i2o.NodeID, route string) {
	e.mu.Lock()
	e.routes[node] = route
	e.mu.Unlock()
}

// Route returns the configured route for a node.
func (e *Executive) Route(node i2o.NodeID) (string, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.routes[node]
	return r, ok
}

// Routes returns a snapshot of the system table.  The health monitor scans
// it to learn which peers to probe.
func (e *Executive) Routes() map[i2o.NodeID]string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[i2o.NodeID]string, len(e.routes))
	for node, route := range e.routes {
		out[node] = route
	}
	return out
}

// FailoverRoute atomically repoints all traffic for a node at another peer
// transport route: the system table entry is replaced and every existing
// proxy for the node is rerouted, so pending discovery results and the
// executive proxy switch fabrics without re-resolution.
func (e *Executive) FailoverRoute(node i2o.NodeID, route string) int {
	e.mu.Lock()
	e.routes[node] = route
	e.mu.Unlock()
	return e.table.Reroute(node, route)
}

// SetPeerDown marks a peer node down or up.  While down, frames for the
// node's proxies are refused with ErrPeerDown instead of being handed to a
// transport, and marking a node down fails every pending request bound for
// it immediately — the tail-latency fix: a request to a corpse no longer
// waits out its full timeout.
func (e *Executive) SetPeerDown(node i2o.NodeID, down bool) {
	if node == i2o.NodeNone {
		return
	}
	e.downMu.Lock()
	if down {
		e.downPeers[node] = struct{}{}
	} else {
		delete(e.downPeers, node)
	}
	e.downMu.Unlock()
	if !down {
		return
	}
	var stranded []*pendingReq
	e.pendMu.Lock()
	for ctx, p := range e.pending {
		if p.node == node {
			delete(e.pending, ctx)
			stranded = append(stranded, p)
		}
	}
	e.pendMu.Unlock()
	for _, p := range stranded {
		p.fail <- fmt.Errorf("%w: %v", ErrPeerDown, node)
	}
}

// PeerDown reports whether a node is currently marked down.
func (e *Executive) PeerDown(node i2o.NodeID) bool {
	e.downMu.RLock()
	_, down := e.downPeers[node]
	e.downMu.RUnlock()
	return down
}

// SetHealthSource installs the callback behind ExecHealthGet, normally the
// health monitor's Report.  The indirection keeps the executive free of
// health-layer knowledge, the same way Router keeps it free of transports.
func (e *Executive) SetHealthSource(fn func() []i2o.Param) {
	e.healthMu.Lock()
	e.healthSource = fn
	e.healthMu.Unlock()
}

// SetPolicySource installs the callback behind ExecPolicyGet, normally
// the control-plane autopilot's Report.  Like SetHealthSource, the
// indirection keeps the executive free of control-plane knowledge.  Nil
// uninstalls; nodes without a source answer autopilot=off.
func (e *Executive) SetPolicySource(fn func() []i2o.Param) {
	e.policyMu.Lock()
	e.policySource = fn
	e.policyMu.Unlock()
}

// SetMembershipHandler installs the callback behind ExecJoin and
// ExecPeerList, normally the cluster membership manager's message hook.
// The handler receives the function code and the request's decoded
// parameter list and returns the reply's parameters.  Like
// SetHealthSource, the indirection keeps the executive free of
// cluster-layer knowledge; without a handler installed, join attempts are
// answered with a failure reply.  Nil uninstalls.
func (e *Executive) SetMembershipHandler(fn func(i2o.Function, []i2o.Param) ([]i2o.Param, error)) {
	e.memberMu.Lock()
	e.memberHook = fn
	e.memberMu.Unlock()
}

// Plug registers a device module, assigns it a TiD and enables it.  This
// is the API form of the ExecPlugin message ("the object code is
// downloaded dynamically into the running executives.  At this point a
// plugin method ... allows us to register the downloaded object").
func (e *Executive) Plug(d *device.Device) (i2o.TID, error) {
	entry, err := e.table.AllocLocal(d.Class(), d.Instance())
	if err != nil {
		return i2o.TIDNone, err
	}
	e.mu.Lock()
	e.devices[entry.TID] = d
	e.mu.Unlock()
	if err := d.Plugged(e, entry.TID); err != nil {
		e.mu.Lock()
		delete(e.devices, entry.TID)
		e.mu.Unlock()
		_ = e.table.Release(entry.TID)
		return i2o.TIDNone, fmt.Errorf("executive: plug %s: %w", d.Class(), err)
	}
	d.SetState(device.Operational)
	e.notifyDeviceChange("plug", d.Class(), d.Instance(), entry.TID)
	return entry.TID, nil
}

// XFuncDeviceChange is the private event the executive sends to
// UtilEventRegister subscribers whenever a device module is plugged or
// unplugged — configuration changes are occurrences, and "essentially
// every occurrence in the system is mapped to an I2O message" (§3.2).
const XFuncDeviceChange uint16 = 0xFF02

// notifyDeviceChange fans a plug/unplug event out to the executive
// device's event subscribers.
func (e *Executive) notifyDeviceChange(action, class string, instance int, id i2o.TID) {
	if len(e.self.Subscribers()) == 0 {
		return
	}
	payload, err := i2o.EncodeParams([]i2o.Param{
		{Key: "action", Value: action},
		{Key: "class", Value: class},
		{Key: "instance", Value: int64(instance)},
		{Key: "tid", Value: int64(id)},
	})
	if err != nil {
		e.Logf("device change event: %v", err)
		return
	}
	if err := e.self.Notify(XFuncDeviceChange, i2o.PriorityHigh, payload); err != nil {
		e.Logf("device change event: %v", err)
	}
}

// Unplug removes a device module and releases its TiD.
func (e *Executive) Unplug(id i2o.TID) error {
	e.mu.Lock()
	d, ok := e.devices[id]
	if ok {
		delete(e.devices, id)
	}
	e.mu.Unlock()
	if !ok || d == e.self {
		if d == e.self {
			e.mu.Lock()
			e.devices[id] = d
			e.mu.Unlock()
			return fmt.Errorf("executive: cannot unplug the executive itself")
		}
		return fmt.Errorf("%w: %v", tid.ErrUnknown, id)
	}
	if err := e.table.Release(id); err != nil {
		return err
	}
	d.Unplugged()
	e.notifyDeviceChange("unplug", d.Class(), d.Instance(), id)
	return nil
}

// Device returns the device registered at id.
func (e *Executive) Device(id i2o.TID) (*device.Device, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	d, ok := e.devices[id]
	return d, ok
}

// Devices returns a snapshot of all registered device modules.
func (e *Executive) Devices() []*device.Device {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*device.Device, 0, len(e.devices))
	for _, d := range e.devices {
		out = append(out, d)
	}
	return out
}

// Close stops the dispatch workers, cancels timers and releases queued
// frames.  It is idempotent.
func (e *Executive) Close() {
	e.closeOnce.Do(func() {
		e.timerMu.Lock()
		for id, t := range e.timers {
			t.Stop()
			delete(e.timers, id)
		}
		e.timerMu.Unlock()

		e.dispMu.Lock()
		e.dispClosed = true
		e.dispMu.Unlock()
		e.in.Close()
		e.dispWG.Wait()
		for _, m := range e.in.Drain() {
			m.Recycle()
		}

		e.pendMu.Lock()
		for ctx, p := range e.pending {
			close(p.ch)
			delete(e.pending, ctx)
		}
		e.pendMu.Unlock()

		e.runners.close()
	})
}
