package executive

import (
	"errors"
	"sync"
	"testing"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/pool"
	"xdaq/internal/probe"
	"xdaq/internal/queue"
)

func TestCloseFailsPendingRequests(t *testing.T) {
	e := New(quietOpts("a", 1))
	d := device.New("sink", 0)
	entered := make(chan struct{})
	release := make(chan struct{})
	d.Bind(1, func(*device.Context, *i2o.Message) error {
		close(entered)
		<-release
		return nil
	})
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := e.Request(&i2o.Message{
			Target: id, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		})
		got <- err
	}()
	<-entered
	go func() {
		// Close blocks on the dispatch loop, which is parked in the
		// handler; release it shortly after.
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	e.Close()
	select {
	case err := <-got:
		// Either the closed-pending path or a late normal completion is
		// acceptable; hanging is not.
		_ = err
	case <-time.After(2 * time.Second):
		t.Fatal("request hung across Close")
	}
}

func TestInjectFromWithInvalidInitiator(t *testing.T) {
	// Frames with no initiator (hardware events, notifications) must pass
	// through InjectFrom without a return proxy.
	e := newExec(t, "a", 1)
	seen := make(chan i2o.TID, 1)
	d := device.New("sink", 0)
	d.Bind(1, func(_ *device.Context, m *i2o.Message) error {
		seen <- m.Initiator
		return nil
	})
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InjectFrom(9, "pt.x", &i2o.Message{
		Target: id, Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case init := <-seen:
		if init != i2o.TIDNone {
			t.Fatalf("initiator rewritten to %v", init)
		}
	case <-time.After(time.Second):
		t.Fatal("frame never dispatched")
	}
	// No @peer proxy should exist.
	for _, entry := range e.Table().Entries() {
		if entry.Class == "@peer:pt.x" {
			t.Fatalf("return proxy created for invalid initiator: %+v", entry)
		}
	}
}

func TestInjectFromCreatesPerRouteProxies(t *testing.T) {
	e := newExec(t, "a", 1)
	for _, route := range []string{"pt.one", "pt.two"} {
		if err := e.InjectFrom(9, route, &i2o.Message{
			Target: i2o.TIDExecutive, Initiator: 0x33, Function: i2o.UtilNOP,
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for {
		_, ok1 := e.Table().Resolve("@peer:pt.one", 0x33, 9)
		_, ok2 := e.Table().Resolve("@peer:pt.two", 0x33, 9)
		if ok1 && ok2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("per-route proxies missing: %v %v", ok1, ok2)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAllocMessageOversize(t *testing.T) {
	e := newExec(t, "a", 1)
	if _, err := e.AllocMessage(pool.MaxBlock + 1); !errors.Is(err, pool.ErrTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
}

func TestBoundedQueueRejectsWhenFull(t *testing.T) {
	opts := quietOpts("a", 1)
	opts.QueueCapacity = 2
	e := New(opts)
	defer e.Close()
	gate := make(chan struct{})
	d := device.New("gate", 0)
	d.Bind(1, func(*device.Context, *i2o.Message) error {
		<-gate
		return nil
	})
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	defer close(gate)
	// One frame occupies the handler; two fill the queue; more must fail.
	sent := 0
	var lastErr error
	for i := 0; i < 10; i++ {
		lastErr = e.Send(&i2o.Message{
			Target: id, Initiator: i2o.TIDExecutive,
			Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
		})
		if lastErr != nil {
			break
		}
		sent++
	}
	if lastErr == nil {
		t.Fatal("bounded queue never filled")
	}
	if !errors.Is(lastErr, pool.ErrExhausted) {
		t.Fatalf("overflow error: %v", lastErr)
	}
	if sent < 2 || sent > 3 {
		t.Fatalf("accepted %d frames into a 2-deep queue", sent)
	}
}

func TestTimerSetMessageValidation(t *testing.T) {
	e := newExec(t, "a", 1)
	for _, params := range [][]i2o.Param{
		{},                                    // no after_us
		{{Key: "after_us", Value: int64(-5)}}, // negative
		{{Key: "after_us", Value: int64(1000)}, {Key: "target", Value: int64(0)}}, // bad target
	} {
		payload, err := i2o.EncodeParams(params)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Request(&i2o.Message{
			Target: i2o.TIDExecutive, Initiator: i2o.TIDExecutive,
			Function: i2o.ExecTimerSet, Payload: payload,
		}); err == nil {
			t.Errorf("timer set with %v accepted", params)
		}
	}
}

func TestTimerSetExplicitTargetAndPayload(t *testing.T) {
	e := newExec(t, "a", 1)
	hit := make(chan []byte, 1)
	d := device.New("sink", 0)
	d.Bind(XFuncTimerExpired, func(_ *device.Context, m *i2o.Message) error {
		hit <- append([]byte(nil), m.Payload...)
		return nil
	})
	id, err := e.Plug(d)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := i2o.EncodeParams([]i2o.Param{
		{Key: "after_us", Value: int64(5000)},
		{Key: "target", Value: int64(id)},
		{Key: "payload", Value: []byte("beep")},
	})
	rep, err := e.Request(&i2o.Message{
		Target: i2o.TIDExecutive, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecTimerSet, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Release()
	select {
	case p := <-hit:
		if string(p) != "beep" {
			t.Fatalf("timer payload %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer with explicit target never fired")
	}
}

func TestTimerCancelValidation(t *testing.T) {
	e := newExec(t, "a", 1)
	payload, _ := i2o.EncodeParams(nil)
	if _, err := e.Request(&i2o.Message{
		Target: i2o.TIDExecutive, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecTimerCancel, Payload: payload,
	}); err == nil {
		t.Fatal("cancel without id accepted")
	}
	// Cancelling an unknown id reports stopped=false but succeeds.
	payload, _ = i2o.EncodeParams([]i2o.Param{{Key: "timer", Value: int64(9999)}})
	rep, err := e.Request(&i2o.Message{
		Target: i2o.TIDExecutive, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecTimerCancel, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	params, _ := i2o.DecodeParams(rep.Payload)
	if len(params) != 1 || params[0].Value != false {
		t.Fatalf("cancel unknown: %v", params)
	}
}

func TestLateReplyIsDroppedSilently(t *testing.T) {
	e := newExec(t, "a", 1)
	// A reply frame whose context matches no pending request and whose
	// target has no handler for the code must be dropped, not answered.
	before := e.Stats().Dropped
	m := &i2o.Message{
		Flags: i2o.FlagReply, Target: i2o.TIDExecutive, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 0x999 & 0xFFFF,
		InitiatorContext: 123456,
	}
	if err := e.Inject(m); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for e.Stats().Dropped == before {
		if time.Now().After(deadline) {
			t.Fatal("late reply not dropped")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestProbedDispatchFailurePaths(t *testing.T) {
	reg := &probe.Registry{}
	opts := quietOpts("probed", 1)
	opts.Probes = reg
	e := New(opts)
	defer e.Close()
	probe.Enable(true)
	defer probe.Enable(false)
	// Unknown function with probes on: fail reply produced via the probed
	// path.
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Request(&i2o.Message{
		Target: id, Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 0x42,
	})
	var rec *i2o.FailRecord
	if !errors.As(err, &rec) || rec.Code != i2o.FailUnknownFunction {
		t.Fatalf("err %v", err)
	}
}

func TestDeviceChangeEvents(t *testing.T) {
	e := newExec(t, "a", 1)
	events := make(chan []i2o.Param, 4)
	watcher := device.New("watcher", 0)
	watcher.Bind(XFuncDeviceChange, func(_ *device.Context, m *i2o.Message) error {
		params, err := i2o.DecodeParams(m.Payload)
		if err != nil {
			return err
		}
		events <- params
		return nil
	})
	watcherTID, err := e.Plug(watcher)
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe the watcher to executive events.
	rep, err := e.Request(&i2o.Message{
		Target: i2o.TIDExecutive, Initiator: watcherTID,
		Function: i2o.UtilEventRegister,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Release()

	id, err := e.Plug(echoDevice(5))
	if err != nil {
		t.Fatal(err)
	}
	expect := func(action string) {
		t.Helper()
		select {
		case params := <-events:
			got := map[string]any{}
			for _, p := range params {
				got[p.Key] = p.Value
			}
			if got["action"] != action || got["class"] != "echo" || got["tid"] != int64(id) {
				t.Fatalf("event %v, want action=%s", got, action)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("no %s event", action)
		}
	}
	expect("plug")
	if err := e.Unplug(id); err != nil {
		t.Fatal(err)
	}
	expect("unplug")
}

func TestConcurrentRequests(t *testing.T) {
	e := newExec(t, "a", 1)
	id, err := e.Plug(echoDevice(0))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				payload := []byte{byte(g), byte(i)}
				rep, err := e.Request(&i2o.Message{
					Target: id, Initiator: i2o.TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
					Payload: payload,
				})
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				if rep.Payload[0] != byte(g) || rep.Payload[1] != byte(i) {
					t.Errorf("g%d i%d: cross-talk %v", g, i, rep.Payload)
					rep.Release()
					return
				}
				rep.Release()
			}
		}(g)
	}
	wg.Wait()
}

func TestQueueCapacityZeroMeansUnbounded(t *testing.T) {
	s := queue.NewSched(0)
	for i := 0; i < 10_000; i++ {
		if err := s.Push(&i2o.Message{Target: 1, Priority: 0}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if s.Len() != 10_000 {
		t.Fatalf("len %d", s.Len())
	}
}
