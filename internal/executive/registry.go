package executive

import (
	"fmt"
	"sort"
	"sync"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
)

// Factory builds one device-class instance from ExecPlugin parameters.
type Factory func(instance int, params []i2o.Param) (*device.Device, error)

// The module registry substitutes for the paper's dynamic code download:
// C++ XDAQ compiled device classes to shared objects and downloaded them
// into running executives at configuration time.  Go binaries cannot load
// object code at runtime, so modules register a factory under a name at
// program start and ExecPlugin instantiates by name — the configuration
// flow (plug by message, TiD assigned, parameters retrieved) is preserved.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// RegisterModule makes a device-class factory available to ExecPlugin
// messages under the given name.  It panics on duplicate names, like
// database/sql.Register.
func RegisterModule(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("executive: module %q registered twice", name))
	}
	registry[name] = f
}

// UnregisterModule removes a factory; intended for tests.
func UnregisterModule(name string) {
	regMu.Lock()
	delete(registry, name)
	regMu.Unlock()
}

// Instantiate builds a device from a registered module factory.
func Instantiate(name string, instance int, params []i2o.Param) (*device.Device, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("executive: unknown module %q", name)
	}
	return f(instance, params)
}

// Modules returns the registered module names, sorted.
func Modules() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
