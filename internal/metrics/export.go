package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// promName converts a dotted metric name ("exec.queue.wait.p0") to the
// Prometheus identifier charset, prefixed "xdaq_".
func promName(name string) string {
	var b strings.Builder
	b.Grow(5 + len(name))
	b.WriteString("xdaq_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters as `_total`, gauges plainly, and
// histograms with cumulative `_bucket{le="…"}` series in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.Snapshot() {
		name := promName(s.Name)
		switch s.Kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", name, name, s.Count); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Value); err != nil {
				return err
			}
		case KindHistogram:
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum uint64
			for i := 0; i < NumBuckets; i++ {
				cum += s.Histo.Buckets[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(Bound(i))/1e9, cum); err != nil {
					return err
				}
			}
			cum += s.Histo.Buckets[NumBuckets]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
				name, cum, name, float64(s.Histo.SumNanos)/1e9, name, s.Histo.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the registry as one flat expvar-style JSON object:
// counters and gauges as numbers, histograms as nested objects with
// count, sum and quantile estimates in nanoseconds.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.Snapshot()
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, s := range samples {
		sep := ","
		if i == 0 {
			sep = ""
		}
		var err error
		switch s.Kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s\n  %q: %d", sep, s.Name, s.Count)
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s\n  %q: %d", sep, s.Name, s.Value)
		case KindHistogram:
			_, err = fmt.Fprintf(w, "%s\n  %q: {\"count\": %d, \"sum_ns\": %d, \"p50_ns\": %d, \"p90_ns\": %d, \"p99_ns\": %d}",
				sep, s.Name, s.Histo.Count, s.Histo.SumNanos,
				s.Histo.Quantile(0.50), s.Histo.Quantile(0.90), s.Histo.Quantile(0.99))
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// ServeHTTP implements http.Handler: Prometheus text by default, JSON
// when the request asks for it (?format=json or an Accept header naming
// application/json).  Mount it on cmd/xdaqd's -metrics listener.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	wantJSON := req.URL.Query().Get("format") == "json" ||
		strings.Contains(req.Header.Get("Accept"), "application/json")
	if wantJSON {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// Flatten renders a snapshot as sorted (name, value) pairs with scalar
// values only: counters as uint64, gauges as int64, histograms expanded
// to .count, .sum.ns, .p50.ns and .p99.ns rows.  This is the shape the
// executive encodes into an ExecMetricsGet reply, so a remote scrape and
// a local Snapshot see the same numbers.
func Flatten(samples []Sample) []FlatSample {
	out := make([]FlatSample, 0, len(samples))
	for _, s := range samples {
		switch s.Kind {
		case KindCounter:
			out = append(out, FlatSample{Name: s.Name, Uint: s.Count, IsUint: true})
		case KindGauge:
			out = append(out, FlatSample{Name: s.Name, Int: s.Value})
		case KindHistogram:
			out = append(out,
				FlatSample{Name: s.Name + ".count", Uint: s.Histo.Count, IsUint: true},
				FlatSample{Name: s.Name + ".sum.ns", Uint: s.Histo.SumNanos, IsUint: true},
				FlatSample{Name: s.Name + ".p50.ns", Int: s.Histo.Quantile(0.50)},
				FlatSample{Name: s.Name + ".p99.ns", Int: s.Histo.Quantile(0.99)},
			)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FlatSample is one scalar row of a flattened snapshot.
type FlatSample struct {
	Name   string
	Uint   uint64
	Int    int64
	IsUint bool
}
