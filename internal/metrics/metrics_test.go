package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero counter")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0 (<= 1µs)
	h.Observe(3 * time.Microsecond)  // bucket 2 (<= 4µs)
	h.Observe(time.Second)           // overflow
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[2] != 1 || s.Buckets[NumBuckets] != 1 {
		t.Fatalf("bucket placement wrong: %v", s.Buckets)
	}
	if q := s.Quantile(0.5); q != Bound(2) {
		t.Fatalf("p50 = %d, want %d", q, Bound(2))
	}
	if q := s.Quantile(1.0); q != 2*Bound(NumBuckets-1) {
		t.Fatalf("p100 = %d, want overflow estimate", q)
	}
	if s.Mean() == 0 {
		t.Fatal("mean should be nonzero")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestSnapshotSortedAndFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Gauge("a").Set(1)
	r.Func("m", func() int64 { return 42 })
	r.Func("panics", func() int64 { panic("boom") })
	r.Histogram("h").Observe(time.Millisecond)
	s := r.Snapshot()
	if len(s) != 5 {
		t.Fatalf("snapshot has %d samples, want 5", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", s[i-1].Name, s[i].Name)
		}
	}
	for _, v := range s {
		if v.Name == "panics" && v.Value != 0 {
			t.Fatalf("panicking func sampled as %d, want 0", v.Value)
		}
		if v.Name == "m" && v.Value != 42 {
			t.Fatalf("func sampled as %d, want 42", v.Value)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("exec.dispatched").Add(3)
	r.Gauge("exec.queue.depth").Set(2)
	r.Histogram("pta.pollScan").Observe(5 * time.Microsecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE xdaq_exec_dispatched_total counter",
		"xdaq_exec_dispatched_total 3",
		"xdaq_exec_queue_depth 2",
		"# TYPE xdaq_pta_pollScan histogram",
		`xdaq_pta_pollScan_bucket{le="+Inf"} 1`,
		"xdaq_pta_pollScan_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("exec.dispatched").Add(9)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "xdaq_exec_dispatched_total 9") {
		t.Fatalf("prometheus body: %s", rec.Body.String())
	}

	req = httptest.NewRequest("GET", "/metrics?format=json", nil)
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"exec.dispatched": 9`) {
		t.Fatalf("json body: %s", rec.Body.String())
	}
}

func TestFlatten(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Histogram("h").Observe(time.Microsecond)
	flat := Flatten(r.Snapshot())
	names := make(map[string]FlatSample, len(flat))
	for _, f := range flat {
		names[f.Name] = f
	}
	if f, ok := names["c"]; !ok || !f.IsUint || f.Uint != 2 {
		t.Fatalf("flat counter: %+v", names["c"])
	}
	for _, want := range []string{"h.count", "h.sum.ns", "h.p50.ns", "h.p99.ns"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("flatten missing %q (have %v)", want, flat)
		}
	}
}

func TestEnableGate(t *testing.T) {
	Enable(false)
	if Enabled() {
		t.Fatal("expected disabled")
	}
	Enable(true)
	if !Enabled() {
		t.Fatal("expected enabled")
	}
	Enable(false)
}
