// Package metrics implements the cluster-wide metrics layer of the
// paper's system management dimension (§2, third requirement): every
// component must be observable "according to one common scheme".  A
// Registry holds named counters, gauges and bounded latency histograms;
// the executive owns one per node and exports it two ways — over ordinary
// I2O frames (ExecMetricsGet, so any node can scrape any other through
// the same message fabric that carries data) and, optionally, over HTTP
// in Prometheus text or expvar-style JSON form (cmd/xdaqd -metrics).
//
// The hot path is lock-free: counters and gauges are single atomic
// operations, histogram observation is three.  Timestamp-taking call
// sites (queue wait time, poll-scan duration) follow the same gating
// discipline as package probe: they check Enabled() first, so with
// metrics timing disabled the instrumented paths cost one atomic load —
// preserving the payload-independent framework overhead of figure 6.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var enabled atomic.Bool

// Enable turns timing collection on or off globally.  Counters and gauges
// are always live (they are single atomic adds); Enable gates only the
// call sites that would need to read the clock, such as queue wait-time
// and poll-scan duration histograms.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether timing call sites should take timestamps.
// Instrumented code must check it before calling time.Now so that the
// disabled configuration costs nothing but this load.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter (ExecSysClear semantics).
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: exponential bounds from 1 µs doubling up to
// ~134 ms, plus an overflow bucket.  Durations are recorded in
// nanoseconds; the bounds cover everything from a sub-microsecond
// dispatch to a stalled multi-millisecond poll scan.
const (
	numBuckets    = 18
	minBucketNano = 1_000 // 1 µs
)

// bucketBound returns the inclusive upper bound (ns) of bucket i;
// the last bucket is unbounded.
func bucketBound(i int) int64 {
	return minBucketNano << uint(i)
}

// Histogram is a bounded latency histogram with an atomic hot path:
// Observe is two counter adds and one bucket add, no locks, no
// allocation, constant memory regardless of sample volume (unlike
// probe.Point, which stores raw samples and is meant for offline
// whitebox analysis).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [numBuckets + 1]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(ns))
	idx := numBuckets // overflow
	for i := 0; i < numBuckets; i++ {
		if ns <= bucketBound(i) {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
}

// Since observes the time elapsed from start; a convenience mirroring
// probe.Point.Since.
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// HistogramSnapshot is a consistent-enough copy of a histogram for
// reporting.  Buckets holds per-bucket (not cumulative) counts; the
// bucket i upper bound is Bound(i), and the final bucket is overflow.
type HistogramSnapshot struct {
	Count    uint64
	SumNanos uint64
	Buckets  [numBuckets + 1]uint64
}

// NumBuckets is the number of bounded buckets (the snapshot carries one
// extra overflow bucket).
const NumBuckets = numBuckets

// Bound returns the upper bound in nanoseconds of bounded bucket i.
func Bound(i int) int64 { return bucketBound(i) }

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns an upper-bound estimate (ns) of the q-quantile
// (0 < q <= 1): the bound of the bucket in which that rank falls.  The
// overflow bucket reports twice the largest bounded bound.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i <= numBuckets; i++ {
		seen += s.Buckets[i]
		if seen >= rank {
			if i == numBuckets {
				return 2 * bucketBound(numBuckets-1)
			}
			return bucketBound(i)
		}
	}
	return 2 * bucketBound(numBuckets - 1)
}

// Mean returns the mean observed duration in nanoseconds.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return int64(s.SumNanos / s.Count)
}

// Kind tags a sample in a registry snapshot.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota

	// KindGauge is an instantaneous value (including sampled funcs).
	KindGauge

	// KindHistogram is a latency distribution.
	KindHistogram
)

// Sample is one named metric in a snapshot.
type Sample struct {
	Name  string
	Kind  Kind
	Count uint64             // KindCounter
	Value int64              // KindGauge
	Histo *HistogramSnapshot // KindHistogram
}

// Registry is a named collection of metrics.  The zero value is ready to
// use; the executive creates one per node so that multi-node processes
// export per-node numbers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	histos   map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry used by components created outside
// an executive's scope (standalone transports, tests).
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Func registers (or replaces) a sampled gauge: fn is called at snapshot
// time.  Use it to surface values a subsystem already maintains — queue
// depths, pool statistics — without adding a second counter to its hot
// path.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.funcs == nil {
		r.funcs = make(map[string]func() int64)
	}
	r.funcs[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histos == nil {
		r.histos = make(map[string]*Histogram)
	}
	h, ok := r.histos[name]
	if !ok {
		h = &Histogram{}
		r.histos[name] = h
	}
	return h
}

// Snapshot returns every metric's current value, sorted by name.  Sampled
// funcs are evaluated here; a panicking func yields zero rather than
// taking the scrape down.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+len(r.histos))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Kind: KindCounter, Count: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	histos := make(map[string]*Histogram, len(r.histos))
	for name, h := range r.histos {
		histos[name] = h
	}
	r.mu.Unlock()

	for name, fn := range funcs {
		out = append(out, Sample{Name: name, Kind: KindGauge, Value: safeCall(fn)})
	}
	for name, h := range histos {
		s := h.Snapshot()
		out = append(out, Sample{Name: name, Kind: KindHistogram, Histo: &s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func safeCall(fn func() int64) (v int64) {
	defer func() { _ = recover() }()
	return fn()
}
