package orb

import (
	"sync"
	"sync/atomic"

	"xdaq/internal/transport/gm"
)

// GMWire binds an endpoint to a simulated Myrinet NIC, point-to-point to
// one peer port.  Using the same fabric as the XDAQ GM peer transport
// keeps the ORB-vs-XDAQ benchmark an apples-to-apples comparison: both
// stacks pay identical wire costs, so the measured difference is pure
// middleware overhead.
type GMWire struct {
	nic  *gm.NIC
	peer gm.Port
}

// NewGMWire opens a wire on nic toward peer, keeping `provide` receive
// buffers posted.
func NewGMWire(nic *gm.NIC, peer gm.Port, provide int) (*GMWire, error) {
	if provide <= 0 {
		provide = 32
	}
	w := &GMWire{nic: nic, peer: peer}
	for i := 0; i < provide; i++ {
		if err := nic.Provide(make([]byte, gm.MTU), nil); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Send implements Wire.
func (w *GMWire) Send(data []byte) error { return w.nic.Send(w.peer, data) }

// Receive implements Wire.  The consumed buffer is replaced so the ring
// stays populated; the returned slice is only valid until the next
// Receive (the ORB endpoint copies requests before serving them).
func (w *GMWire) Receive() ([]byte, bool) {
	r, ok := w.nic.Receive()
	if !ok {
		return nil, false
	}
	_ = w.nic.Provide(make([]byte, gm.MTU), nil)
	return r.Buf[:r.N], true
}

// Close implements Wire.
func (w *GMWire) Close() { w.nic.Close() }

// PipeWire is an in-process wire pair for tests: unbounded queues of
// copied messages.
type PipeWire struct {
	out    chan []byte
	in     chan []byte
	closed atomic.Bool
	once   *sync.Once // shared by both ends
	done   chan struct{}
}

// NewPipe returns two connected wires.
func NewPipe(depth int) (*PipeWire, *PipeWire) {
	if depth <= 0 {
		depth = 128
	}
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &PipeWire{out: ab, in: ba, done: done, once: once}
	b := &PipeWire{out: ba, in: ab, done: done, once: once}
	return a, b
}

// Send implements Wire.
func (p *PipeWire) Send(data []byte) error {
	if p.closed.Load() {
		return ErrClosed
	}
	cp := append([]byte(nil), data...)
	select {
	case p.out <- cp:
		return nil
	case <-p.done:
		return ErrClosed
	}
}

// Receive implements Wire.
func (p *PipeWire) Receive() ([]byte, bool) {
	select {
	case d := <-p.in:
		return d, true
	case <-p.done:
		select {
		case d := <-p.in:
			return d, true
		default:
			return nil, false
		}
	}
}

// Close implements Wire; closing either side closes both.
func (p *PipeWire) Close() {
	p.closed.Store(true)
	p.once.Do(func() { close(p.done) })
}
