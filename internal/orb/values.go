// Package orb implements a deliberately conventional distributed-object
// request broker: the "heavyweight middleware" comparison point of the
// paper's related-work discussion (§6.2), which cites ORB core overheads
// of roughly 90 µs per call against XDAQ's ~9 µs.
//
// Everything XDAQ avoids by design, this broker does on every call:
//
//   - self-describing, tag-per-value marshalling into freshly allocated
//     buffers (a general marshalling engine instead of fixed frames);
//   - string object keys and string operation names resolved through maps
//     (instead of numeric TiDs and function codes);
//   - a request/reply protocol header with version and context list;
//   - a goroutine per incoming request (thread-per-request dispatch
//     instead of the executive's single loop of control).
//
// The point of the package is not to be slow — it is a correct, usable
// little ORB — but to pay the generality costs that the I2O architecture
// is structured to avoid, so the benchmark gap has the same cause as in
// the paper.
package orb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Value type tags.
const (
	tagNull byte = iota
	tagBool
	tagInt64
	tagUint64
	tagDouble
	tagString
	tagBytes
	tagSequence
)

// Marshalling errors.
var (
	// ErrBadValue reports an unsupported Go type in an argument list.
	ErrBadValue = errors.New("orb: unsupported value type")

	// ErrTruncatedValue reports a short buffer during unmarshalling.
	ErrTruncatedValue = errors.New("orb: truncated value")
)

// appendValue marshals one tagged value.
func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, tagNull), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(buf, tagBool, b), nil
	case int64:
		buf = append(buf, tagInt64)
		return binary.LittleEndian.AppendUint64(buf, uint64(x)), nil
	case int:
		buf = append(buf, tagInt64)
		return binary.LittleEndian.AppendUint64(buf, uint64(int64(x))), nil
	case uint64:
		buf = append(buf, tagUint64)
		return binary.LittleEndian.AppendUint64(buf, x), nil
	case float64:
		buf = append(buf, tagDouble)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x)), nil
	case string:
		buf = append(buf, tagString)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case []byte:
		buf = append(buf, tagBytes)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case []any:
		buf = append(buf, tagSequence)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		var err error
		for _, elem := range x {
			if buf, err = appendValue(buf, elem); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadValue, v)
	}
}

// readValue unmarshals one tagged value, returning the remaining buffer.
func readValue(buf []byte) (any, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, ErrTruncatedValue
	}
	tag := buf[0]
	buf = buf[1:]
	switch tag {
	case tagNull:
		return nil, buf, nil
	case tagBool:
		if len(buf) < 1 {
			return nil, nil, ErrTruncatedValue
		}
		return buf[0] != 0, buf[1:], nil
	case tagInt64, tagUint64, tagDouble:
		if len(buf) < 8 {
			return nil, nil, ErrTruncatedValue
		}
		u := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		switch tag {
		case tagInt64:
			return int64(u), buf, nil
		case tagUint64:
			return u, buf, nil
		default:
			return math.Float64frombits(u), buf, nil
		}
	case tagString, tagBytes:
		if len(buf) < 4 {
			return nil, nil, ErrTruncatedValue
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if n < 0 || len(buf) < n {
			return nil, nil, ErrTruncatedValue
		}
		body := buf[:n]
		buf = buf[n:]
		if tag == tagString {
			return string(body), buf, nil
		}
		out := make([]byte, n)
		copy(out, body)
		return out, buf, nil
	case tagSequence:
		if len(buf) < 4 {
			return nil, nil, ErrTruncatedValue
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if n < 0 || n > len(buf) {
			return nil, nil, ErrTruncatedValue
		}
		seq := make([]any, 0, n)
		for i := 0; i < n; i++ {
			var v any
			var err error
			v, buf, err = readValue(buf)
			if err != nil {
				return nil, nil, err
			}
			seq = append(seq, v)
		}
		return seq, buf, nil
	default:
		return nil, nil, fmt.Errorf("%w: tag %d", ErrBadValue, tag)
	}
}

// MarshalValues encodes an argument list.
func MarshalValues(args []any) ([]byte, error) {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(args)))
	var err error
	for _, a := range args {
		if buf, err = appendValue(buf, a); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// UnmarshalValues decodes an argument list, returning the remaining bytes.
func UnmarshalValues(buf []byte) ([]any, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, ErrTruncatedValue
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n < 0 || n > len(buf)+1 {
		return nil, nil, ErrTruncatedValue
	}
	args := make([]any, 0, n)
	for i := 0; i < n; i++ {
		var v any
		var err error
		v, buf, err = readValue(buf)
		if err != nil {
			return nil, nil, err
		}
		args = append(args, v)
	}
	return args, buf, nil
}
