package orb

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"xdaq/internal/transport/gm"
)

func TestValuesRoundTrip(t *testing.T) {
	args := []any{
		nil, true, false, int64(-9), uint64(9), 3.75,
		"a string", []byte{0, 1, 2},
		[]any{int64(1), "nested", []any{false}},
	}
	buf, err := MarshalValues(args)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := UnmarshalValues(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("unmarshal: %v rest=%d", err, len(rest))
	}
	if !reflect.DeepEqual(got, args) {
		t.Fatalf("round trip:\n got %#v\nwant %#v", got, args)
	}
}

func TestValuesIntCoercion(t *testing.T) {
	buf, err := MarshalValues([]any{42})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := UnmarshalValues(buf)
	if err != nil || got[0] != int64(42) {
		t.Fatalf("int coercion: %v %v", got, err)
	}
}

func TestValuesRejectUnsupported(t *testing.T) {
	if _, err := MarshalValues([]any{struct{}{}}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("struct: %v", err)
	}
	if _, err := MarshalValues([]any{[]any{complex(1, 2)}}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("nested: %v", err)
	}
}

func TestValuesTruncation(t *testing.T) {
	buf, err := MarshalValues([]any{"hello", int64(1), []any{true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i++ {
		if _, _, err := UnmarshalValues(buf[:i]); err == nil {
			t.Fatalf("prefix %d decoded", i)
		}
	}
}

func TestQuickValuesNeverPanic(t *testing.T) {
	f := func(junk []byte) bool {
		_, _, _ = UnmarshalValues(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValuesRoundTrip(t *testing.T) {
	var gen func(r *rand.Rand, depth int) any
	gen = func(r *rand.Rand, depth int) any {
		switch r.Intn(8) {
		case 0:
			return nil
		case 1:
			return r.Intn(2) == 0
		case 2:
			return int64(r.Uint64())
		case 3:
			return r.Uint64()
		case 4:
			return float64(r.Intn(1000)) / 8
		case 5:
			return strings.Repeat("x", r.Intn(20))
		case 6:
			b := make([]byte, r.Intn(20))
			r.Read(b)
			return b
		default:
			if depth >= 2 {
				return nil
			}
			seq := make([]any, r.Intn(4))
			for i := range seq {
				seq[i] = gen(r, depth+1)
			}
			return seq
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		args := make([]any, r.Intn(6))
		for i := range args {
			args[i] = gen(r, 0)
		}
		buf, err := MarshalValues(args)
		if err != nil {
			return false
		}
		got, rest, err := UnmarshalValues(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(args) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, args)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func echoServant() *Servant {
	s := NewServant()
	s.Register("echo", func(args []any) ([]any, error) { return args, nil })
	s.Register("concat", func(args []any) ([]any, error) {
		var b strings.Builder
		for _, a := range args {
			if s, ok := a.(string); ok {
				b.WriteString(s)
			}
		}
		return []any{b.String()}, nil
	})
	s.Register("fail", func([]any) ([]any, error) {
		return nil, errors.New("intentional")
	})
	return s
}

func pipePair(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	wa, wb := NewPipe(0)
	a := NewEndpoint(wa)
	b := NewEndpoint(wb)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	return a, b
}

func TestInvokeOverPipe(t *testing.T) {
	a, b := pipePair(t)
	b.Bind("svc", echoServant())
	ref := a.Object("svc")
	out, err := ref.Invoke("echo", int64(1), "two", 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []any{int64(1), "two", 3.0}) {
		t.Fatalf("echo: %#v", out)
	}
	out, err = ref.Invoke("concat", "a", "b", "c")
	if err != nil || out[0] != "abc" {
		t.Fatalf("concat: %v %v", out, err)
	}
}

func TestInvokeFaults(t *testing.T) {
	a, b := pipePair(t)
	b.Bind("svc", echoServant())
	if _, err := a.Object("missing").Invoke("echo"); err == nil || !strings.Contains(err.Error(), "unknown object") {
		t.Fatalf("missing object: %v", err)
	}
	if _, err := a.Object("svc").Invoke("nope"); err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Fatalf("missing op: %v", err)
	}
	if _, err := a.Object("svc").Invoke("fail"); err == nil || !strings.Contains(err.Error(), "intentional") {
		t.Fatalf("fault: %v", err)
	}
}

func TestBidirectionalObjects(t *testing.T) {
	a, b := pipePair(t)
	a.Bind("left", echoServant())
	b.Bind("right", echoServant())
	out, err := a.Object("right").Invoke("concat", "from-a")
	if err != nil || out[0] != "from-a" {
		t.Fatal(err)
	}
	out, err = b.Object("left").Invoke("concat", "from-b")
	if err != nil || out[0] != "from-b" {
		t.Fatal(err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	a, b := pipePair(t)
	b.Bind("svc", echoServant())
	ref := a.Object("svc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				out, err := ref.Invoke("echo", int64(g*1000+i))
				if err != nil || out[0] != int64(g*1000+i) {
					t.Errorf("g%d i%d: %v %v", g, i, out, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCloseFailsPending(t *testing.T) {
	wa, wb := NewPipe(0)
	a := NewEndpoint(wa)
	b := NewEndpoint(wb)
	s := NewServant()
	block := make(chan struct{})
	entered := make(chan struct{})
	s.Register("hang", func([]any) ([]any, error) {
		close(entered)
		<-block
		return nil, nil
	})
	b.Bind("svc", s)
	errCh := make(chan error, 1)
	go func() {
		_, err := a.Object("svc").Invoke("hang")
		errCh <- err
	}()
	// Wait until the server entered the handler, then close the client.
	<-entered
	a.Close()
	close(block)
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("pending after close: %v", err)
	}
	b.Close()
	if _, err := a.Object("svc").Invoke("echo"); !errors.Is(err, ErrClosed) {
		t.Fatalf("invoke after close: %v", err)
	}
}

func TestOverGMFabric(t *testing.T) {
	fabric := gm.NewFabric()
	na, err := fabric.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := fabric.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	wa, err := NewGMWire(na, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewGMWire(nb, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := NewEndpoint(wa)
	b := NewEndpoint(wb)
	defer a.Close()
	defer b.Close()
	b.Bind("svc", echoServant())
	out, err := a.Object("svc").Invoke("echo", "over gm")
	if err != nil || out[0] != "over gm" {
		t.Fatalf("%v %v", out, err)
	}
}
