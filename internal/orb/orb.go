package orb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Wire is the byte transport an endpoint binds to: a point-to-point
// connection to one peer endpoint.  Bindings exist for the simulated
// Myrinet fabric (fair comparison with the XDAQ GM peer transport) and for
// in-process pipes (tests).
type Wire interface {
	// Send transmits one message to the peer.
	Send(data []byte) error

	// Receive blocks for the next message; ok is false once the wire is
	// closed.
	Receive() ([]byte, bool)

	// Close tears the wire down.
	Close()
}

// Message kinds.
const (
	msgRequest byte = 1
	msgReply   byte = 2
	msgFault   byte = 3
)

// protocolVersion is carried in every message header.
const protocolVersion byte = 1

// Errors.
var (
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("orb: closed")

	// ErrNoObject reports an unknown object key.
	ErrNoObject = errors.New("orb: unknown object")

	// ErrNoOperation reports an unknown operation name.
	ErrNoOperation = errors.New("orb: unknown operation")

	// ErrProtocol reports a malformed message.
	ErrProtocol = errors.New("orb: protocol error")
)

// Operation is one servant method.
type Operation func(args []any) ([]any, error)

// Servant is one remotely invocable object: named operations.
type Servant struct {
	mu  sync.RWMutex
	ops map[string]Operation
}

// NewServant returns an empty servant.
func NewServant() *Servant { return &Servant{ops: make(map[string]Operation)} }

// Register adds an operation under name.
func (s *Servant) Register(name string, op Operation) {
	s.mu.Lock()
	s.ops[name] = op
	s.mu.Unlock()
}

func (s *Servant) lookup(name string) (Operation, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	op, ok := s.ops[name]
	return op, ok
}

// Endpoint is one side of an ORB connection: it serves local objects and
// invokes remote ones over a single wire.
type Endpoint struct {
	wire Wire

	mu      sync.RWMutex
	objects map[string]*Servant

	pendMu  sync.Mutex
	pending map[uint64]chan reply
	reqSeq  atomic.Uint64

	closed atomic.Bool
	done   chan struct{}
}

type reply struct {
	results []any
	err     error
}

// NewEndpoint binds an endpoint to a wire and starts its receive loop.
func NewEndpoint(w Wire) *Endpoint {
	e := &Endpoint{
		wire:    w,
		objects: make(map[string]*Servant),
		pending: make(map[uint64]chan reply),
		done:    make(chan struct{}),
	}
	go e.receiveLoop()
	return e
}

// Bind exports a servant under an object key.
func (e *Endpoint) Bind(key string, s *Servant) {
	e.mu.Lock()
	e.objects[key] = s
	e.mu.Unlock()
}

// Object returns a reference for invoking operations on the peer's object
// with the given key.
func (e *Endpoint) Object(key string) *ObjectRef {
	return &ObjectRef{ep: e, key: key}
}

// Close shuts the endpoint and its wire down.
func (e *Endpoint) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.wire.Close()
	<-e.done
	e.pendMu.Lock()
	for id, ch := range e.pending {
		ch <- reply{err: ErrClosed}
		delete(e.pending, id)
	}
	e.pendMu.Unlock()
}

// ObjectRef is a client-side reference to a remote object.
type ObjectRef struct {
	ep  *Endpoint
	key string
}

// Invoke calls the named operation with the given arguments and returns
// its results — the full generality path: marshal, request header with
// service context, correlation table, demarshal.
func (r *ObjectRef) Invoke(operation string, args ...any) ([]any, error) {
	if r.ep.closed.Load() {
		return nil, ErrClosed
	}
	body, err := MarshalValues(args)
	if err != nil {
		return nil, err
	}
	id := r.ep.reqSeq.Add(1)

	// Header: kind, version, request id, service context count (always
	// encoded, always empty — the cost of protocol generality), object
	// key, operation name.
	buf := make([]byte, 0, 32+len(r.key)+len(operation)+len(body))
	buf = append(buf, msgRequest, protocolVersion)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // service contexts
	buf = appendString(buf, r.key)
	buf = appendString(buf, operation)
	buf = append(buf, body...)

	ch := make(chan reply, 1)
	r.ep.pendMu.Lock()
	r.ep.pending[id] = ch
	r.ep.pendMu.Unlock()

	if err := r.ep.wire.Send(buf); err != nil {
		r.ep.pendMu.Lock()
		delete(r.ep.pending, id)
		r.ep.pendMu.Unlock()
		return nil, err
	}
	rep := <-ch
	return rep.results, rep.err
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, ErrProtocol
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n < 0 || len(buf) < n {
		return "", nil, ErrProtocol
	}
	return string(buf[:n]), buf[n:], nil
}

func (e *Endpoint) receiveLoop() {
	defer close(e.done)
	for {
		data, ok := e.wire.Receive()
		if !ok {
			return
		}
		if len(data) < 2 || data[1] != protocolVersion {
			continue
		}
		switch data[0] {
		case msgRequest:
			// Thread-per-request dispatch, the conventional ORB model.
			req := append([]byte(nil), data...)
			go e.serveRequest(req)
		case msgReply, msgFault:
			e.completeReply(data)
		}
	}
}

func (e *Endpoint) serveRequest(data []byte) {
	buf := data[2:]
	if len(buf) < 12 {
		return
	}
	id := binary.LittleEndian.Uint64(buf)
	nctx := int(binary.LittleEndian.Uint32(buf[8:]))
	buf = buf[12:]
	for i := 0; i < nctx; i++ { // skip service contexts
		var err error
		if _, buf, err = readString(buf); err != nil {
			return
		}
	}
	key, buf, err := readString(buf)
	if err != nil {
		return
	}
	op, buf, err := readString(buf)
	if err != nil {
		return
	}

	results, ferr := e.dispatch(key, op, buf)

	var out []byte
	if ferr != nil {
		out = append(out, msgFault, protocolVersion)
		out = binary.LittleEndian.AppendUint64(out, id)
		out = appendString(out, ferr.Error())
	} else {
		body, err := MarshalValues(results)
		if err != nil {
			out = append(out, msgFault, protocolVersion)
			out = binary.LittleEndian.AppendUint64(out, id)
			out = appendString(out, err.Error())
		} else {
			out = append(out, msgReply, protocolVersion)
			out = binary.LittleEndian.AppendUint64(out, id)
			out = append(out, body...)
		}
	}
	_ = e.wire.Send(out)
}

func (e *Endpoint) dispatch(key, op string, body []byte) ([]any, error) {
	e.mu.RLock()
	servant := e.objects[key]
	e.mu.RUnlock()
	if servant == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoObject, key)
	}
	operation, ok := servant.lookup(op)
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", ErrNoOperation, op, key)
	}
	args, _, err := UnmarshalValues(body)
	if err != nil {
		return nil, err
	}
	return operation(args)
}

func (e *Endpoint) completeReply(data []byte) {
	buf := data[2:]
	if len(buf) < 8 {
		return
	}
	id := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	e.pendMu.Lock()
	ch, ok := e.pending[id]
	if ok {
		delete(e.pending, id)
	}
	e.pendMu.Unlock()
	if !ok {
		return
	}
	if data[0] == msgFault {
		detail, _, err := readString(buf)
		if err != nil {
			detail = "undecodable fault"
		}
		ch <- reply{err: fmt.Errorf("orb: remote fault: %s", detail)}
		return
	}
	results, _, err := UnmarshalValues(buf)
	ch <- reply{results: results, err: err}
}
