package tid

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"xdaq/internal/i2o"
)

func TestAllocLocalAssignsSequentialTIDs(t *testing.T) {
	tbl := NewTable()
	e1, err := tbl.AllocLocal("ping", 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := tbl.AllocLocal("ping", 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.TID == e2.TID || !e1.TID.Valid() || !e2.TID.Valid() {
		t.Fatalf("tids %v %v", e1.TID, e2.TID)
	}
	if e1.Kind != Local || e1.Class != "ping" || e1.Instance != 0 {
		t.Fatalf("entry %+v", e1)
	}
}

func TestClaimExecutive(t *testing.T) {
	tbl := NewTable()
	e, err := tbl.Claim(i2o.TIDExecutive, "executive", 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.TID != i2o.TIDExecutive {
		t.Fatalf("claimed %v", e.TID)
	}
	if _, err := tbl.Claim(i2o.TIDExecutive, "other", 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("re-claim: %v", err)
	}
	// Subsequent allocation must skip the claimed TiD.
	e2, err := tbl.AllocLocal("app", 0)
	if err != nil {
		t.Fatal(err)
	}
	if e2.TID == i2o.TIDExecutive {
		t.Fatal("allocator handed out a claimed TiD")
	}
}

func TestClaimInvalid(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Claim(i2o.TIDNone, "x", 0); err == nil {
		t.Fatal("claimed TIDNone")
	}
	if _, err := tbl.Claim(i2o.TIDMax+1, "x", 0); err == nil {
		t.Fatal("claimed out-of-range TiD")
	}
}

func TestDuplicateName(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.AllocLocal("app", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AllocLocal("app", 3); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate name: %v", err)
	}
	// Same class+instance on a different node is a distinct name.
	if _, err := tbl.AllocProxy("app", 3, 7, "tcp", 9); err != nil {
		t.Fatalf("proxy with same class/instance: %v", err)
	}
	// The failed registration must not leak its TiD: allocate the
	// remaining space and count.
	n := tbl.Len()
	for {
		if _, err := tbl.AllocLocal("fill", n); err != nil {
			break
		}
		n++
	}
	if got := tbl.Len(); got != int(i2o.TIDMax) {
		t.Fatalf("filled table holds %d entries, want %d", got, int(i2o.TIDMax))
	}
}

func TestProxyEntry(t *testing.T) {
	tbl := NewTable()
	e, err := tbl.AllocProxy("ReadoutUnit", 2, 5, "pt.gm", 0x42)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != Proxy || e.Node != 5 || e.Route != "pt.gm" || e.Remote != 0x42 {
		t.Fatalf("entry %+v", e)
	}
	got, ok := tbl.Resolve("ReadoutUnit", 2, 5)
	if !ok || got.TID != e.TID {
		t.Fatalf("Resolve = %+v, %v", got, ok)
	}
	if _, err := tbl.AllocProxy("x", 0, 5, "pt.gm", i2o.TIDNone); err == nil {
		t.Fatal("proxy with invalid remote TiD accepted")
	}
}

func TestLookupAndRelease(t *testing.T) {
	tbl := NewTable()
	e, _ := tbl.AllocLocal("app", 0)
	if _, ok := tbl.Lookup(e.TID); !ok {
		t.Fatal("Lookup missed registered entry")
	}
	if err := tbl.Release(e.TID); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(e.TID); ok {
		t.Fatal("Lookup found released entry")
	}
	if err := tbl.Release(e.TID); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double release: %v", err)
	}
	// The name is free again after release.
	if _, err := tbl.AllocLocal("app", 0); err != nil {
		t.Fatalf("re-register released name: %v", err)
	}
}

func TestReleaseRecyclesTID(t *testing.T) {
	tbl := NewTable()
	e, _ := tbl.AllocLocal("a", 0)
	if err := tbl.Release(e.TID); err != nil {
		t.Fatal(err)
	}
	e2, _ := tbl.AllocLocal("b", 0)
	if e2.TID != e.TID {
		t.Fatalf("released TiD %v not recycled, got %v", e.TID, e2.TID)
	}
}

func TestExhaustion(t *testing.T) {
	tbl := NewTable()
	for i := 0; ; i++ {
		_, err := tbl.AllocLocal("fill", i)
		if err != nil {
			if !errors.Is(err, ErrExhausted) {
				t.Fatalf("unexpected error: %v", err)
			}
			if i != int(i2o.TIDMax) {
				t.Fatalf("exhausted after %d allocations, want %d", i, int(i2o.TIDMax))
			}
			return
		}
	}
}

func TestEntriesSorted(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < 20; i++ {
		if _, err := tbl.AllocLocal("app", i); err != nil {
			t.Fatal(err)
		}
	}
	es := tbl.Entries()
	if len(es) != 20 {
		t.Fatalf("Entries len %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].TID >= es[i].TID {
			t.Fatal("Entries not sorted by TiD")
		}
	}
}

func TestProxiesByRoute(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.AllocLocal("local", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AllocProxy("r", 0, 1, "pt.gm", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AllocProxy("r", 1, 2, "pt.tcp", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AllocProxy("r", 2, 3, "pt.gm", 2); err != nil {
		t.Fatal(err)
	}
	got := tbl.Proxies("pt.gm")
	if len(got) != 2 {
		t.Fatalf("Proxies(pt.gm) = %d entries", len(got))
	}
	for _, e := range got {
		if e.Route != "pt.gm" || e.Kind != Proxy {
			t.Fatalf("bad proxy row %+v", e)
		}
	}
}

func TestConcurrentAllocation(t *testing.T) {
	tbl := NewTable()
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	tids := make([][]i2o.TID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e, err := tbl.AllocLocal("conc", g*per+i)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				tids[g] = append(tids[g], e.TID)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[i2o.TID]bool)
	for _, list := range tids {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("TiD %v handed out twice", id)
			}
			seen[id] = true
		}
	}
	if tbl.Len() != goroutines*per {
		t.Fatalf("table len %d", tbl.Len())
	}
}

func TestQuickAllocReleaseInvariant(t *testing.T) {
	// Any interleaving of allocations and releases keeps Len consistent
	// and never hands out a TiD twice concurrently.
	f := func(ops []bool) bool {
		tbl := NewTable()
		live := map[i2o.TID]bool{}
		n := 0
		for i, alloc := range ops {
			if alloc || len(live) == 0 {
				e, err := tbl.AllocLocal("q", i)
				if err != nil {
					return false
				}
				if live[e.TID] {
					return false
				}
				live[e.TID] = true
				n++
			} else {
				for id := range live {
					if tbl.Release(id) != nil {
						return false
					}
					delete(live, id)
					n--
					break
				}
			}
			if tbl.Len() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryString(t *testing.T) {
	tbl := NewTable()
	l, _ := tbl.AllocLocal("app", 0)
	p, _ := tbl.AllocProxy("app", 1, 2, "pt.tcp", 3)
	if l.String() == "" || p.String() == "" || Local.String() == Proxy.String() {
		t.Fatal("string forms")
	}
}
