// Package tid implements Target ID allocation and the address table that
// gives XDAQ its transparency of location (§3.4 of the paper).
//
// Every device instance — software or hardware module — gets a numeric TiD
// that is unique within one IOP.  To communicate with a remote device, the
// executive creates a *proxy* entry: a local TiD bound to routing
// information (which peer transport, which node, which TiD over there).
// The caller never needs to know whether a device is really local or
// whether the call is redirected — the Proxy pattern.
package tid

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"xdaq/internal/i2o"
)

// Kind distinguishes local modules from proxies for remote devices.
type Kind int

const (
	// Local marks a device module registered with this executive.
	Local Kind = iota

	// Proxy marks a local alias for a device on a remote IOP; frames sent
	// to it are forwarded by the peer transport agent.
	Proxy
)

func (k Kind) String() string {
	if k == Local {
		return "local"
	}
	return "proxy"
}

// Entry is one address table row.
type Entry struct {
	TID      i2o.TID
	Kind     Kind
	Class    string // device class name, e.g. "pt.gm" or "ReadoutUnit"
	Instance int    // instance number within the class

	// Proxy routing information (zero for local entries).
	Node   i2o.NodeID // remote IOP
	Route  string     // peer transport carrying frames to Node
	Remote i2o.TID    // the device's TiD on the remote IOP
}

func (e Entry) String() string {
	if e.Kind == Local {
		return fmt.Sprintf("%v %s[%d] local", e.TID, e.Class, e.Instance)
	}
	return fmt.Sprintf("%v %s[%d] proxy -> %v %v via %s", e.TID, e.Class, e.Instance, e.Node, e.Remote, e.Route)
}

// Errors.
var (
	// ErrExhausted reports that all 4094 allocatable TiDs are in use.
	ErrExhausted = errors.New("tid: address space exhausted")

	// ErrDuplicate reports a second registration of the same
	// (class, instance, node) or an already-claimed TiD.
	ErrDuplicate = errors.New("tid: duplicate registration")

	// ErrUnknown reports a lookup or release of an unregistered TiD.
	ErrUnknown = errors.New("tid: unknown target")
)

type nameKey struct {
	class    string
	instance int
	node     i2o.NodeID
}

// Table is one IOP's address table.  It is safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	entries map[i2o.TID]Entry
	byName  map[nameKey]i2o.TID
	next    i2o.TID
	free    []i2o.TID
}

// NewTable returns an empty table.  TiD 1 (the executive) is not
// pre-claimed; executives claim it explicitly with Claim.
func NewTable() *Table {
	return &Table{
		entries: make(map[i2o.TID]Entry),
		byName:  make(map[nameKey]i2o.TID),
		next:    i2o.TIDExecutive, // allocation starts at 1
	}
}

// alloc picks the next free TiD; callers hold t.mu.
func (t *Table) alloc() (i2o.TID, error) {
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		return id, nil
	}
	for t.next <= i2o.TIDMax {
		id := t.next
		t.next++
		if _, taken := t.entries[id]; !taken {
			return id, nil
		}
	}
	return i2o.TIDNone, ErrExhausted
}

func (t *Table) insert(e Entry) (Entry, error) {
	key := nameKey{e.Class, e.Instance, e.Node}
	if prev, ok := t.byName[key]; ok {
		return Entry{}, fmt.Errorf("%w: %s[%d]@%v already %v", ErrDuplicate, e.Class, e.Instance, e.Node, prev)
	}
	t.entries[e.TID] = e
	t.byName[key] = e.TID
	return e, nil
}

// AllocLocal registers a local device module and returns its entry.
func (t *Table) AllocLocal(class string, instance int) (Entry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, err := t.alloc()
	if err != nil {
		return Entry{}, err
	}
	e, err := t.insert(Entry{TID: id, Kind: Local, Class: class, Instance: instance})
	if err != nil {
		t.free = append(t.free, id)
	}
	return e, err
}

// AllocProxy registers a proxy for a device on a remote IOP and returns the
// local entry.  Frames targeted at the returned TiD are forwarded over the
// named route.
func (t *Table) AllocProxy(class string, instance int, node i2o.NodeID, route string, remote i2o.TID) (Entry, error) {
	if !remote.Valid() {
		return Entry{}, fmt.Errorf("%w: remote %v", ErrUnknown, remote)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id, err := t.alloc()
	if err != nil {
		return Entry{}, err
	}
	e, err := t.insert(Entry{
		TID: id, Kind: Proxy, Class: class, Instance: instance,
		Node: node, Route: route, Remote: remote,
	})
	if err != nil {
		t.free = append(t.free, id)
	}
	return e, err
}

// Claim registers a local device under a specific TiD.  Used for the
// well-known addresses (the executive claims i2o.TIDExecutive).
func (t *Table) Claim(id i2o.TID, class string, instance int) (Entry, error) {
	if !id.Valid() {
		return Entry{}, fmt.Errorf("%w: %v", ErrUnknown, id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, taken := t.entries[id]; taken {
		return Entry{}, fmt.Errorf("%w: %v", ErrDuplicate, id)
	}
	return t.insert(Entry{TID: id, Kind: Local, Class: class, Instance: instance})
}

// Lookup returns the entry for id.
func (t *Table) Lookup(id i2o.TID) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.entries[id]
	return e, ok
}

// Resolve finds the TiD registered for (class, instance) on the given node
// (i2o.NodeNone for local modules).
func (t *Table) Resolve(class string, instance int, node i2o.NodeID) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.byName[nameKey{class, instance, node}]
	if !ok {
		return Entry{}, false
	}
	return t.entries[id], true
}

// Release removes an entry and returns its TiD to the free list.
func (t *Table) Release(id i2o.TID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknown, id)
	}
	delete(t.entries, id)
	delete(t.byName, nameKey{e.Class, e.Instance, e.Node})
	t.free = append(t.free, id)
	return nil
}

// Len returns the number of registered entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Entries returns a snapshot of all rows, ordered by TiD.  This backs the
// ExecHrtGet (hardware resource table) executive message.
func (t *Table) Entries() []Entry {
	t.mu.RLock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}

// Reroute repoints every proxy for the given node at a different peer
// transport route and reports how many entries changed.  The table lock
// makes the switch atomic with respect to Lookup: a concurrent forward
// sees either the old route or the new one, never a torn entry.
func (t *Table) Reroute(node i2o.NodeID, route string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, e := range t.entries {
		if e.Kind == Proxy && e.Node == node && e.Route != route {
			e.Route = route
			t.entries[id] = e
			n++
		}
	}
	return n
}

// Proxies returns a snapshot of proxy rows routed over the named transport,
// used when a route goes down and its proxies must be invalidated.
func (t *Table) Proxies(route string) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Entry
	for _, e := range t.entries {
		if e.Kind == Proxy && e.Route == route {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}
