package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/metrics"
)

// The HotDev scenario closes the control loop end to end: one node's
// echo device turns hot (a multi-millisecond stall per request), its
// single dispatcher serializes the whole node behind the stall, and the
// autopilot on node 1 — watching nothing but the ordinary metrics scrape
// — must notice the sustained queue depth, rescale the victim's
// dispatchers over the fabric, and thereby bring the storm's tail
// latency back down while the device itself stays hot.

// HotDevPolicy is the canonical policy for HotDev runs (xdaqsoak
// -hotdev): sustained inbound queue pressure on any member rescales that
// member's dispatch pool.  The sustain window keeps storm bursts from
// firing it; the cooldown plus the deadband keep the actuation from
// flapping once the pool is wide.
const HotDevPolicy = `
rule hot-rescale {
    when {[metric exec.queue.depth] > 8}
    for 2
    cooldown 8
    do {dispatchers 8}
}`

// policyTick is the autopilot scrape interval inside the harness: fast
// enough that a hot round converges in a fraction of its storm phase.
const policyTick = 20 * time.Millisecond

const (
	// hotServiceTime is the injected per-request stall.
	hotServiceTime = 2 * time.Millisecond

	// hotConvergeWait bounds how long hotRound keeps the storm pressure
	// on while waiting for the autopilot's rescale to land.  It is a cap,
	// not a sleep — an idle host converges in a few ticks and the wait
	// returns immediately — so it is sized for the worst case: a CI host
	// running the whole suite concurrently, where the controller
	// goroutine itself can be starved for whole seconds at a time.
	hotConvergeWait = 15 * time.Second

	// hotConvergeTicks is the same budget in scrape ticks, the unit the
	// decision log is recorded in, with slack for ticks already queued
	// when the wait expires.  On an idle host convergence takes a
	// handful of ticks; the budget is sized for CI hosts running the
	// whole suite concurrently, where individual scrapes can stall.
	hotConvergeTicks = uint64(hotConvergeWait/policyTick) + 10

	// hotRecoveryFloor absorbs scheduler noise in the recovery check: a
	// recovered p99 is accepted when it is within 2x the pre-injection
	// baseline OR under this floor (5x the injected service time — with
	// a wide pool a probe can still land behind a stalled handler, -race
	// inflates every sleep, and on a CI host running suites concurrently
	// a goroutine wakeup alone costs milliseconds).  An unrecovered node
	// still fails by an order of magnitude: with a single dispatcher the
	// probe queues behind every stalled echo in the backlog, which
	// measures in tens of milliseconds.
	hotRecoveryFloor = 10 * time.Millisecond
)

// hotRound runs the hot-device storm phases: baseline probe under clean
// storm, skew injection under storm until the autopilot reacts, then a
// recovery probe with the device still hot.  The measurements land on
// the Cluster for the policy checker to judge at the next quiescent
// point.
func (c *Cluster) hotRound(victim i2o.NodeID, d time.Duration) {
	n := c.node(victim)
	c.logf("chaos: hot round: node %d echo gains %v service time", victim, hotServiceTime)

	quarter := d / 4
	c.hotVictim = victim
	c.hotBaseline = c.probeP99(victim, quarter)

	if c.ap != nil {
		c.hotTick0 = c.ap.Controller().Tick()
	}
	n.hotNS.Store(int64(hotServiceTime))

	// Pressure stays on until the rescale lands: the rule needs the depth
	// sustained across consecutive scrapes, and on a loaded CI host the
	// controller can stall past any single storm burst.  The storm alone
	// is not enough — its workers block on cross-traffic to every peer,
	// so when the host starves the whole process they slow down exactly
	// as much as the victim's dispatcher and the sampled queue depth
	// never crosses the trigger.  Dedicated echo lanes against the hot
	// device close that hole: each lane keeps one stalled request in
	// flight, so the victim's queue holds a standing backlog above the
	// policy threshold no matter how unfair the scheduler is.  Default
	// priority, not the zero value (urgent): at urgent the lanes would
	// outrank the autopilot's own scrape frames and starve the very loop
	// under test.
	const hotEchoLanes = 24
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.storm(d / 2)
		}
	}()
	src := c.Nodes[0]
	for i := 0; i < hotEchoLanes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				rep, err := src.Exec.RequestContext(ctx, &i2o.Message{
					Priority: i2o.PriorityDefault,
					Target:   src.echoTID[victim], Initiator: i2o.TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: fnEcho,
					Payload: []byte("hot"),
				})
				cancel()
				if err == nil {
					rep.Release()
				}
			}
		}()
	}
	// The skew stays on for the rest of the run; recovery must come from
	// the autopilot widening the pool, not from the device cooling down.
	c.hotActuated = waitTrue(hotConvergeWait, func() bool {
		return n.Exec.Dispatchers() > 1
	})
	close(stop)
	wg.Wait()

	c.hotRecovered = c.probeP99(victim, quarter)
	c.logf("chaos: hot round: p99 baseline=%v recovered=%v actuated=%v (dispatchers=%d)",
		c.hotBaseline, c.hotRecovered, c.hotActuated, n.Exec.Dispatchers())
}

// probeP99 measures the storm tail latency toward the victim: pings ride
// the same inbound scheduler as every workload frame, so their p99 is
// the head-of-line blocking the autopilot is supposed to cure.  The
// storm runs concurrently for the whole window.
func (c *Cluster) probeP99(victim i2o.NodeID, d time.Duration) time.Duration {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.storm(d)
	}()
	src := c.Nodes[0].Exec
	deadline := time.Now().Add(d)
	var lats []time.Duration
	for time.Now().Before(deadline) {
		t0 := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := src.PingContext(ctx, victim)
		cancel()
		if err == nil {
			lats = append(lats, time.Since(t0))
		}
		time.Sleep(500 * time.Microsecond)
	}
	wg.Wait()
	return p99(lats)
}

func p99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[(len(lats)-1)*99/100]
}

// killAutopilot is the KillCP degradation: close the controller, then
// capture every node's dispatcher count — Close is synchronous, so no
// actuation can land after the capture, and the policy checker asserts
// the cluster holds exactly this state for the rest of the run.
func (c *Cluster) killAutopilot() {
	c.logf("chaos: killing the autopilot (graceful degradation round)")
	c.ap.Close()
	c.apClosed = true
	c.apLastDisp = make(map[i2o.NodeID]int)
	for _, n := range c.Nodes {
		c.apLastDisp[n.ID] = n.Exec.Dispatchers()
	}
}

// policyChecker validates the control plane at every quiescent point.
//
// After a hot round it asserts the convergence contract: the autopilot
// actuated SetDispatchers on the victim, did so within hotConvergeTicks
// of the skew, never oscillated the value, and the storm p99 recovered
// to within 2x the pre-injection baseline (or under the scheduler-noise
// floor).  The decision log itself being a pure function of the metric
// series is proven by the fake-clock decision-table tests in
// internal/controlplane — under wall-clock chaos the scrape timings
// vary, so this checker asserts the structural properties that must
// hold on every schedule rather than one exact log.
//
// After a KillCP round it asserts graceful degradation: dispatcher
// counts hold the last-actuated values and a fresh remote ExecPolicyGet
// reports the autopilot off.
type policyChecker struct{}

func (policyChecker) Name() string { return "policy" }

func (policyChecker) Check(c *Cluster) (out []string) {
	if c.ap == nil {
		return nil
	}
	if c.hotVictim != 0 {
		out = append(out, checkHotConvergence(c)...)
	}
	if c.apClosed {
		out = append(out, checkDegradation(c)...)
	}
	return out
}

func checkHotConvergence(c *Cluster) (out []string) {
	var fires []string
	var firstTick uint64
	var firstAction string
	for _, d := range c.ap.Controller().Decisions() {
		if d.Node != c.hotVictim || d.Outcome != "actuated" ||
			!strings.HasPrefix(d.Action, "dispatchers ") {
			continue
		}
		if fires == nil {
			firstTick, firstAction = d.Tick, d.Action
		}
		fires = append(fires, d.Action)
	}
	if !c.hotActuated || len(fires) == 0 {
		out = append(out, fmt.Sprintf(
			"hot round: autopilot never rescaled node %d (actuated=%v, %d dispatcher decisions)\n  %s\n  victim decisions:%s",
			c.hotVictim, c.hotActuated, len(fires), cpCounters(c), victimDecisions(c)))
		return out
	}
	if firstTick > c.hotTick0+hotConvergeTicks {
		out = append(out, fmt.Sprintf(
			"hot round: first actuation on node %d at tick %d, skew at tick %d — over the %d-tick budget",
			c.hotVictim, firstTick, c.hotTick0, hotConvergeTicks))
	}
	for _, a := range fires[1:] {
		if a != firstAction {
			out = append(out, fmt.Sprintf(
				"hot round: oscillating actuation on node %d: %q then %q",
				c.hotVictim, firstAction, a))
			break
		}
	}
	if c.hotRecovered > 2*c.hotBaseline && c.hotRecovered > hotRecoveryFloor {
		out = append(out, fmt.Sprintf(
			"hot round: storm p99 did not recover: baseline %v, after rescale %v (want <= 2x or <= %v)",
			c.hotBaseline, c.hotRecovered, hotRecoveryFloor))
	}
	return out
}

// cpCounters renders the controller node's cp.* counters so a
// convergence violation says which stage starved: no ticks means the
// loop itself never ran, scrape errors mean the fabric path to the
// victim failed, decisions without actuations mean the rule fired but
// every actuation erred.
func cpCounters(c *Cluster) string {
	var b strings.Builder
	b.WriteString("cp:")
	for _, fs := range metrics.Flatten(c.Nodes[0].Exec.Metrics().Snapshot()) {
		if !strings.HasPrefix(fs.Name, "cp.") {
			continue
		}
		if fs.IsUint {
			fmt.Fprintf(&b, " %s=%d", fs.Name, fs.Uint)
		} else {
			fmt.Fprintf(&b, " %s=%d", fs.Name, fs.Int)
		}
	}
	return b.String()
}

// victimDecisions renders the tail of the victim's decision log — every
// outcome, not just actuations — so "never rescaled" distinguishes a
// rule that never fired from one that fired and failed.
func victimDecisions(c *Cluster) string {
	var lines []string
	for _, d := range c.ap.Controller().Decisions() {
		if d.Node == c.hotVictim {
			lines = append(lines, d.String())
		}
	}
	const keep = 12
	if len(lines) > keep {
		lines = lines[len(lines)-keep:]
	}
	if len(lines) == 0 {
		return " (none)"
	}
	return "\n    " + strings.Join(lines, "\n    ")
}

func checkDegradation(c *Cluster) (out []string) {
	for _, n := range c.Nodes {
		if got, want := n.Exec.Dispatchers(), c.apLastDisp[n.ID]; got != want {
			out = append(out, fmt.Sprintf(
				"degradation: node %d dispatchers moved to %d after the autopilot died (last actuated %d)",
				n.ID, got, want))
		}
	}
	// The report must say "off" over the same remote path an operator
	// would use (xdaqctl policy <node>).
	probe := c.Nodes[1].Exec
	target, err := probe.ExecProxy(c.Nodes[0].ID)
	if err != nil {
		return append(out, fmt.Sprintf("degradation: no proxy to the controller node: %v", err))
	}
	rep, err := probe.Request(&i2o.Message{
		Priority: i2o.PriorityHigh, Target: target, Initiator: i2o.TIDExecutive,
		Function: i2o.ExecPolicyGet,
	})
	if err != nil {
		return append(out, fmt.Sprintf("degradation: ExecPolicyGet after kill: %v", err))
	}
	defer rep.Release()
	params, err := i2o.DecodeParams(rep.Payload)
	if err != nil {
		return append(out, fmt.Sprintf("degradation: ExecPolicyGet reply: %v", err))
	}
	for _, p := range params {
		if p.Key == "autopilot" {
			if p.Value != "off" {
				out = append(out, fmt.Sprintf(
					"degradation: ExecPolicyGet reports autopilot=%v after kill, want off", p.Value))
			}
			return out
		}
	}
	return append(out, "degradation: ExecPolicyGet reply has no autopilot row")
}
