package chaos

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"xdaq/internal/device"
	"xdaq/internal/i2o"
	"xdaq/internal/sgl"
)

// The harness plugs two device modules into every node:
//
//   - chaos.echo answers requests with a byte-exact copy of the payload,
//     written into a freshly allocated pool block.  Echo round trips
//     exercise the pending-reply table, request timeouts, and the full
//     reply return path (return proxies over remote fabrics).
//   - chaos.seq absorbs fire-and-forget numbered frames and records the
//     arrival order per (source node, worker) — the raw material of the
//     frame-conservation checker.
const (
	echoClass = "chaos.echo"
	seqClass  = "chaos.seq"

	fnEcho = 0x0C01
	fnSeq  = 0x0C02
)

// seqPayloadLen is the fixed wire size of one sequence frame: source
// node (2), worker (2), sequence number (4), little endian.
const seqPayloadLen = 8

// plugWorkloadDevices builds and plugs the chaos devices on one node.
func plugWorkloadDevices(c *Cluster, n *Node) {
	echo := device.New(echoClass, 0)
	echo.Bind(fnEcho, func(ctx *device.Context, m *i2o.Message) error {
		// The HotDev round's service-time skew: stalling the handler
		// occupies a dispatcher, which is exactly the head-of-line
		// pressure the autopilot is expected to relieve by rescaling.
		if ns := n.hotNS.Load(); ns > 0 {
			time.Sleep(time.Duration(ns))
		}
		if len(m.Payload) == 0 {
			return device.ReplyIfExpected(ctx, m, nil)
		}
		// Copy the payload into a fresh pool block: the request frame is
		// recycled by the dispatcher as soon as this handler returns, while
		// the reply may still sit in a send ring — aliasing the request
		// bytes into the reply (what ReplyIfExpected would do) races with
		// that recycling on every asynchronous fabric.
		b, err := ctx.Host.Alloc(len(m.Payload))
		if err != nil {
			return err
		}
		body := b.Bytes()[:len(m.Payload)]
		copy(body, m.Payload)
		rep := i2o.NewReply(m)
		rep.Payload = body
		rep.AttachBuffer(b)
		return ctx.Host.Send(rep)
	})
	if _, err := n.Exec.Plug(echo); err != nil {
		panic(fmt.Sprintf("chaos: plug echo on node %d: %v", n.ID, err))
	}

	seq := device.New(seqClass, 0)
	seq.Bind(fnSeq, func(ctx *device.Context, m *i2o.Message) error {
		if len(m.Payload) < seqPayloadLen {
			c.violate("node %d: seq frame with %d-byte payload", n.ID, len(m.Payload))
			return nil
		}
		src := binary.LittleEndian.Uint16(m.Payload[0:2])
		worker := binary.LittleEndian.Uint16(m.Payload[2:4])
		no := binary.LittleEndian.Uint32(m.Payload[4:8])
		key := uint32(src)<<16 | uint32(worker)
		n.recvMu.Lock()
		n.recv[key] = append(n.recv[key], no)
		n.recvMu.Unlock()
		return nil
	})
	if _, err := n.Exec.Plug(seq); err != nil {
		panic(fmt.Sprintf("chaos: plug seq on node %d: %v", n.ID, err))
	}
}

// storm runs the randomized request/reply and fire-and-forget load on
// every node for d: each worker goroutine cycles over the peers sending a
// burst of numbered seq frames plus one blocking echo round trip.
func (c *Cluster) storm(d time.Duration) {
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for _, n := range c.Nodes {
		for w := 0; w < c.Opts.Workers; w++ {
			wg.Add(1)
			go func(n *Node, w int) {
				defer wg.Done()
				c.stormWorker(n, w, deadline)
			}(n, w)
		}
	}
	wg.Wait()
}

func (c *Cluster) stormWorker(n *Node, w int, deadline time.Time) {
	iter := uint32(0)
	for time.Now().Before(deadline) {
		iter++
		for _, p := range c.Nodes {
			if p == n {
				continue
			}
			for i := 0; i < 4; i++ {
				c.sendSeq(n, w, p.ID)
			}
			c.sendEcho(n, w, p.ID, iter)
		}
	}
}

// sendSeq fires one numbered frame at dst's chaos.seq device.  The
// sequence number is consumed only when the executive accepts the frame —
// exec.Send forwards proxies synchronously, so a nil return means the
// frame entered the fabric (it may still be dropped by an armed fault:
// that is exactly the loss the conservation checker accounts for).
func (c *Cluster) sendSeq(n *Node, w int, dst i2o.NodeID) {
	m, err := n.Exec.AllocMessage(seqPayloadLen)
	if err != nil {
		c.violate("node %d: alloc seq frame: %v", n.ID, err)
		return
	}
	no := n.nextSeq[w][dst] + 1
	binary.LittleEndian.PutUint16(m.Payload[0:2], uint16(n.ID))
	binary.LittleEndian.PutUint16(m.Payload[2:4], uint16(w))
	binary.LittleEndian.PutUint32(m.Payload[4:8], no)
	m.Target = n.seqTID[dst]
	m.Initiator = i2o.TIDExecutive
	m.XFunction = fnSeq
	if err := n.Exec.Send(m); err != nil {
		// Rejected before reaching the fabric: the number is reused, so
		// successfully sent numbers stay contiguous from 1.
		n.seqErr.Add(1)
		if !c.lossy {
			c.violate("node %d worker %d: clean-run seq send to %d failed: %v", n.ID, w, dst, err)
		}
		return
	}
	n.nextSeq[w][dst] = no
	n.seqSent.Add(1)
}

// sendEcho runs one blocking echo round trip and verifies the reply is a
// byte-exact copy.  Errors are tolerated on lossy runs (faults or a killed
// transport); a payload mismatch is a protocol violation always.
func (c *Cluster) sendEcho(n *Node, w int, dst i2o.NodeID, iter uint32) {
	var token [12]byte
	binary.LittleEndian.PutUint16(token[0:2], uint16(n.ID))
	binary.LittleEndian.PutUint16(token[2:4], uint16(w))
	binary.LittleEndian.PutUint32(token[4:8], iter)
	binary.LittleEndian.PutUint32(token[8:12], uint32(dst))
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	rep, err := n.Exec.RequestContext(ctx, &i2o.Message{
		Target: n.echoTID[dst], Initiator: i2o.TIDExecutive,
		Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: fnEcho,
		Payload: token[:],
	})
	cancel()
	if err != nil {
		n.echoErr.Add(1)
		if !c.lossy {
			c.violate("node %d worker %d: clean-run echo to %d failed: %v", n.ID, w, dst, err)
		}
		return
	}
	if !bytes.Equal(rep.Payload, token[:]) {
		c.violate("node %d worker %d: echo reply from %d corrupted: sent %x got %x",
			n.ID, w, dst, token[:], rep.Payload)
	}
	rep.Release()
	n.echoOK.Add(1)
}

// bulkRound runs one large echo round trip from every node to its ring
// successor.  On serializing fabrics (tcp, gm) the request body is a
// chained SGL gathered on the wire; on pointer-passing fabrics it is a
// flat pool block (an SGL cannot cross them, see i2o.AttachList).
func (c *Cluster) bulkRound(size int) {
	serializing := c.Opts.Fabric != "loopback"
	for i, n := range c.Nodes {
		dst := c.Nodes[(i+1)%len(c.Nodes)]
		data := make([]byte, size)
		for k := range data {
			data[k] = byte(k*131 + i)
		}
		m := i2o.AcquireMessage()
		m.Priority = i2o.PriorityDefault
		m.Function = i2o.FuncPrivate
		m.Org = i2o.OrgXDAQ
		m.XFunction = fnEcho
		m.Target = n.echoTID[dst.ID]
		m.Initiator = i2o.TIDExecutive
		if serializing {
			l, err := sgl.FromBytes(n.Exec.Allocator(), data, 8192)
			if err != nil {
				c.violate("node %d: build bulk SGL: %v", n.ID, err)
				m.Recycle()
				continue
			}
			m.AttachList(l)
		} else {
			b, err := n.Exec.Alloc(size)
			if err != nil {
				c.violate("node %d: alloc bulk body: %v", n.ID, err)
				m.Recycle()
				continue
			}
			body := b.Bytes()[:size]
			copy(body, data)
			m.Payload = body
			m.AttachBuffer(b)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		rep, err := n.Exec.RequestContext(ctx, m)
		cancel()
		if err != nil {
			n.echoErr.Add(1)
			if !c.lossy {
				c.violate("node %d: clean-run bulk echo (%d B) to %d failed: %v", n.ID, size, dst.ID, err)
			}
			continue
		}
		if !bytes.Equal(rep.Payload, data) {
			c.violate("node %d: bulk echo from %d corrupted: %d bytes sent, %d back, equal=false",
				n.ID, dst.ID, size, len(rep.Payload))
		}
		rep.Release()
		n.echoOK.Add(1)
	}
}
