package chaos

import (
	"errors"
	"sync"
	"time"

	"xdaq/internal/daq"
	"xdaq/internal/i2o"
)

// ebState is the persistent DAQ event-builder deployment riding along with
// the chaos workload, in the PR's hierarchical shape: event manager and
// readout unit 0 on the first node, readout unit 1 plus the aggregator
// stage on the second, and two sharded builder units on the last — the
// paper's §6 demonstrator scaled to a (tiny) tree with a real shard map.
// The modules are plugged once at build time and re-armed every round (the
// EVM's allocator rewinds, the BUs restart and re-register), so proxy
// entries discovered for them stay valid across rounds and failovers.
//
// Every completed event lands in builtBy via the builders' OnEvent hooks;
// eventBuilderRound audits the log for exactly-once completion and the
// ebChecker re-audits the cumulative totals at every quiescent point.
type ebState struct {
	evm *daq.EVM
	rus []*daq.RU
	agg *daq.Aggregator
	bus []*daq.BU

	mu      sync.Mutex
	builtBy map[uint64][]int // event -> builder instances that completed it (this round)

	// Cumulative across rounds, for the exactly-once checker.
	totalExpected uint64 // sum of clean-round event budgets
	totalBuilt    uint64 // sum of per-round distinct events completed
	killRounds    int    // rounds that killed a builder mid-run
}

// setupEventBuilder plugs the DAQ modules and wires the tree through proxy
// TiDs: both builders pull super-fragments from the aggregator, which
// fans out to the two readout units; everyone fences on the EVM's shard
// map.
func (c *Cluster) setupEventBuilder() error {
	src := c.Nodes[0]
	mid := c.Nodes[1]
	sink := c.Nodes[len(c.Nodes)-1]
	eb := &ebState{
		evm:     daq.NewEVM(0),
		rus:     []*daq.RU{daq.NewRU(0, 512), daq.NewRU(1, 512)},
		agg:     daq.NewAggregator(0),
		bus:     []*daq.BU{daq.NewBU(0), daq.NewBU(1)},
		builtBy: make(map[uint64][]int),
	}
	eb.evm.SetSharding(16, 4)
	if _, err := src.Exec.Plug(eb.evm.Device()); err != nil {
		return err
	}
	if _, err := src.Exec.Plug(eb.rus[0].Device()); err != nil {
		return err
	}
	if _, err := mid.Exec.Plug(eb.rus[1].Device()); err != nil {
		return err
	}
	if _, err := mid.Exec.Plug(eb.agg.Device()); err != nil {
		return err
	}

	// The readout units fence on the shard map they fetch from the EVM.
	evmLocal := eb.evm.Device().TID()
	eb.rus[0].SetEVM(evmLocal)
	evmFromMid, err := mid.Exec.Discover(src.ID, daq.EVMClass, 0)
	if err != nil {
		return err
	}
	eb.rus[1].SetEVM(evmFromMid)

	// Aggregator children: RU 0 by proxy, RU 1 locally.
	ru0FromMid, err := mid.Exec.Discover(src.ID, daq.RUClass, 0)
	if err != nil {
		return err
	}
	eb.agg.Configure(evmFromMid, []daq.AggChild{
		{TID: ru0FromMid},
		{TID: eb.rus[1].Device().TID()},
	})

	// Builders: one aggregator root covering both readout units.
	evmFromSink, err := sink.Exec.Discover(src.ID, daq.EVMClass, 0)
	if err != nil {
		return err
	}
	aggFromSink, err := sink.Exec.Discover(mid.ID, daq.AggClass, 0)
	if err != nil {
		return err
	}
	for i, bu := range eb.bus {
		if _, err := sink.Exec.Plug(bu.Device()); err != nil {
			return err
		}
		bu.ConfigureTree(evmFromSink, []i2o.TID{aggFromSink}, len(eb.rus))
		who := i
		bu.OnEvent = func(event uint64, size int) {
			eb.mu.Lock()
			eb.builtBy[event] = append(eb.builtBy[event], who)
			eb.mu.Unlock()
		}
	}
	c.eb = eb
	return nil
}

// eventBuilderRound rewinds the EVM to the round's event budget and runs
// both builders until the manager is exhausted.  When killBU names a
// builder (1-based instance+1), that builder is killed after it makes
// real progress and evicted from the shard map shortly after — the EVM
// re-grants its unfinished blocks (with built events masked out) to the
// survivor, and the exactly-once audit at the end of the round must still
// hold.  Corruption or a duplicated event is a violation on any run; a
// shortfall is one only when the run is clean.
//
// The round only runs while the cluster is lossless: the builder's
// allocate/fragment pipeline recovers from fenced (failed) requests but
// not from silently dropped frames — under armed faults or after a
// transport kill a wedge is expected behavior, not an invariant to audit.
func (c *Cluster) eventBuilderRound(round, events, killBU int) {
	eb := c.eb
	if eb == nil {
		return
	}
	if c.lossy {
		c.logf("chaos: round %d: skipping event builder on a lossy run", round+1)
		return
	}
	eb.evm.Reset(uint64(events))
	eb.mu.Lock()
	eb.builtBy = make(map[uint64][]int)
	eb.mu.Unlock()

	dones := make([]<-chan struct{}, len(eb.bus))
	for i, bu := range eb.bus {
		done, err := bu.Start(0, 4)
		if err != nil {
			c.violate("round %d: event builder %d start: %v", round+1, i, err)
			return
		}
		dones[i] = done
	}

	victim := killBU - 1
	if victim >= 0 && victim < len(eb.bus) {
		// Kill only after the victim completed something, so the round
		// exercises a mid-pipeline handoff rather than a clean no-op.
		bu := eb.bus[victim]
		deadline := time.Now().Add(3 * time.Second)
		for bu.Stats().Built == 0 && time.Now().Before(deadline) {
			time.Sleep(500 * time.Microsecond)
		}
		c.logf("chaos: round %d: killing event builder %d (built %d)",
			round+1, victim, bu.Stats().Built)
		bu.Kill()
		// The eviction arrives a beat later, the way a health monitor
		// would deliver it: the victim's in-flight built notes land first.
		time.Sleep(20 * time.Millisecond)
		eb.evm.RemoveBU(uint32(victim))
		eb.mu.Lock()
		eb.killRounds++
		eb.mu.Unlock()
	}

	wedged := false
	for i, done := range dones {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			c.violate("round %d: event builder %d wedged (built %d of %d)",
				round+1, i, eb.bus[i].Stats().Built, events)
			wedged = true
		}
	}
	if wedged {
		return
	}

	// BU counters reset at every Start, so Stats is this round's tally.
	var built, bytes uint64
	for i, bu := range eb.bus {
		stats, err := bu.Wait()
		if stats.Corrupt != 0 {
			c.violate("round %d: event builder %d assembled %d corrupt events",
				round+1, i, stats.Corrupt)
		}
		if err != nil && !(i == victim && errors.Is(err, daq.ErrKilled)) {
			c.violate("round %d: event builder %d failed: %v", round+1, i, err)
			return
		}
		built += stats.Built
		bytes += stats.Bytes
	}

	// Exactly once: every event in the round's range completed on exactly
	// one builder — across the kill, the eviction, and the re-grant.
	eb.mu.Lock()
	distinct := uint64(len(eb.builtBy))
	for ev := uint64(1); ev <= uint64(events); ev++ {
		switch who := eb.builtBy[ev]; len(who) {
		case 0:
			c.violate("round %d: event %d never built", round+1, ev)
		case 1:
		default:
			c.violate("round %d: event %d built %d times by builders %v",
				round+1, ev, len(who), who)
		}
	}
	eb.totalExpected += uint64(events)
	eb.totalBuilt += distinct
	eb.mu.Unlock()

	if dup := eb.evm.Duplicates(); dup != 0 {
		c.violate("round %d: event manager counted %d duplicate built notes", round+1, dup)
	}
	if built != uint64(events) {
		c.violate("round %d: event builders built %d of %d events", round+1, built, events)
	}
	if killBU > 0 && eb.evm.Reassigned() == 0 {
		c.violate("round %d: builder %d was killed but no blocks were reassigned",
			round+1, victim)
	}
	c.logf("chaos: round %d event builder: %d events, %d bytes, %d reassigned blocks",
		round+1, built, bytes, eb.evm.Reassigned())
}
