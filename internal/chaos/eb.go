package chaos

import (
	"time"

	"xdaq/internal/daq"
	"xdaq/internal/i2o"
)

// ebState is the persistent DAQ event-builder deployment riding along with
// the chaos workload: event manager and readout unit on the first node, a
// builder unit on the last, exactly the paper's §6 demonstrator.  The
// modules are plugged once at build time and re-armed every round (the
// EVM's allocator rewinds, the BU restarts), so proxy entries discovered
// for them stay valid across rounds and failovers.
type ebState struct {
	evm *daq.EVM
	ru  *daq.RU
	bu  *daq.BU
}

// setupEventBuilder plugs the DAQ modules and wires the builder to its
// sources through proxy TiDs.
func (c *Cluster) setupEventBuilder() error {
	src := c.Nodes[0]
	sink := c.Nodes[len(c.Nodes)-1]
	eb := &ebState{
		evm: daq.NewEVM(0),
		ru:  daq.NewRU(0, 512),
		bu:  daq.NewBU(0),
	}
	if _, err := src.Exec.Plug(eb.evm.Device()); err != nil {
		return err
	}
	if _, err := src.Exec.Plug(eb.ru.Device()); err != nil {
		return err
	}
	if _, err := sink.Exec.Plug(eb.bu.Device()); err != nil {
		return err
	}
	evmTID, err := sink.Exec.Discover(src.ID, daq.EVMClass, 0)
	if err != nil {
		return err
	}
	ruTID, err := sink.Exec.Discover(src.ID, daq.RUClass, 0)
	if err != nil {
		return err
	}
	eb.bu.Configure(evmTID, []i2o.TID{ruTID})
	c.eb = eb
	return nil
}

// eventBuilderRound rewinds the EVM to the round's event budget and runs
// the builder until the manager is exhausted.  Corruption (a fragment that
// does not match its event) is a violation on any run; a shortfall is one
// only when the run is clean.
//
// The round only runs while the cluster is lossless: the builder's
// allocate/fragment pipeline is a pure event-driven state machine with no
// retransmission, so a single dropped frame wedges the run by design —
// under armed faults or after a transport kill that is expected behavior,
// not an invariant to audit.
func (c *Cluster) eventBuilderRound(round, events int) {
	eb := c.eb
	if eb == nil {
		return
	}
	if c.lossy {
		c.logf("chaos: round %d: skipping event builder on a lossy run", round+1)
		return
	}
	eb.evm.Reset(uint64(events))
	done, err := eb.bu.Start(0, 4)
	if err != nil {
		if !c.lossy {
			c.violate("round %d: event builder start: %v", round+1, err)
		}
		return
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		c.violate("round %d: event builder wedged (built %d of %d)",
			round+1, eb.bu.Stats().Built, events)
		return
	}
	// BU counters reset at every Start, so Stats is this round's tally.
	stats, err := eb.bu.Wait()
	if stats.Corrupt != 0 {
		c.violate("round %d: event builder assembled %d corrupt events", round+1, stats.Corrupt)
	}
	if c.lossy {
		return // shortfalls and errors ride on losses
	}
	if err != nil {
		c.violate("round %d: event builder failed: %v", round+1, err)
		return
	}
	if stats.Built != uint64(events) {
		c.violate("round %d: event builder built %d of %d events", round+1, stats.Built, events)
	}
	c.logf("chaos: round %d event builder: %d events, %d bytes", round+1, stats.Built, stats.Bytes)
}
