package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/transport/faults"
	"xdaq/internal/transport/tcp"
)

// Everything random about a run — fault rules, kill victims, dispatcher
// rescales, bulk sizes — is derived from Options.Seed through the helpers
// in this file, and from nothing else.  PlanString renders the derivation,
// so two runs with the same options print byte-identical plans and a
// failing soak can be replayed from the seed alone.

// splitmix64 is the seed-mixing finalizer (Steele et al.); it turns the run
// seed plus a stream tag into well-separated generator seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// deriveSeed mixes the run seed with a stream tag.
func deriveSeed(seed int64, tag uint64) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(tag)))
}

// roundPlan is the deterministic script for one chaos round.
type roundPlan struct {
	// Dispatchers is the worker count to set per node (index into
	// Cluster.Nodes); nil leaves the counts alone.
	Dispatchers []int

	// Kill names the node whose data transport dies at the start of this
	// round (0: nobody dies).
	Kill i2o.NodeID

	// Bulk is the SGL bulk-transfer payload size for this round (0: no
	// bulk traffic).
	Bulk int

	// Events is the DAQ event-builder event count for this round (0: no
	// event-builder traffic).
	Events int

	// KillBU names the builder unit killed mid-round as instance+1 (0:
	// nobody dies); the EVM must rebalance its event range onto the
	// survivor without losing or duplicating an event.
	KillBU int

	// Writes is the storage-replay record count for this round (0: no
	// storage traffic).
	Writes int

	// KillSW names the storage writer crashed mid-replay as instance+1
	// (0: nobody dies); the replayed stream plus the writer's recovered
	// duplicate filter must restore the stripe with nothing lost and
	// nothing doubled.
	KillSW int

	// Hot names the node whose echo device turns hot this round (0:
	// nobody); the autopilot must rescale it and the storm p99 must
	// recover.
	Hot i2o.NodeID
}

// buildRounds scripts every round of a run from the seed.
func buildRounds(o Options) []roundPlan {
	rng := rand.New(rand.NewSource(deriveSeed(o.Seed, 0xC4A05)))
	rounds := make([]roundPlan, o.Rounds)
	killRound := -1
	if o.Kill {
		// The victim dies mid-run, with at least one clean round before
		// and one failed-over round after.
		killRound = 1
		if o.Rounds > 2 {
			killRound = 1 + rng.Intn(o.Rounds-2)
		}
	}
	killBURound := -1
	if o.KillBU && o.EventBuilder {
		// Same shape: at least one clean round before the builder dies,
		// so the shard map has a settled baseline to rebalance from.
		killBURound = 1
		if o.Rounds > 2 {
			killBURound = 1 + rng.Intn(o.Rounds-2)
		}
	}
	// The storage draws happen only when the option is set, so plans of
	// pre-storage option sets keep their exact byte sequences.
	killSWRound := -1
	if o.KillSW && o.Storage {
		killSWRound = 1
		if o.Rounds > 2 {
			killSWRound = 1 + rng.Intn(o.Rounds-2)
		}
	}
	// Hot-device draws are option-guarded like the storage ones: plans
	// of pre-controlplane option sets keep their exact byte sequences.
	hotRound := -1
	if o.HotDev {
		hotRound = 1
		if o.Rounds > 2 {
			hotRound = 1 + rng.Intn(o.Rounds-2)
		}
	}
	for r := range rounds {
		rp := &rounds[r]
		if o.Rescale {
			rp.Dispatchers = make([]int, o.Nodes)
			for i := range rp.Dispatchers {
				rp.Dispatchers[i] = 1 + rng.Intn(4)
			}
		}
		if r == killRound {
			// Never the first node: it hosts the event-builder sources.
			rp.Kill = i2o.NodeID(2 + rng.Intn(o.Nodes-1))
		}
		if o.Bulk {
			rp.Bulk = 4096 + rng.Intn(60*1024)
		}
		if o.EventBuilder {
			rp.Events = 48 + rng.Intn(32)
			if r == killBURound {
				rp.KillBU = 1 + rng.Intn(2)
				// A kill round needs a budget the victim cannot drain
				// before the kill lands (loopback builds tens of events
				// per millisecond): otherwise nothing is left to
				// reassign and the round proves nothing.
				rp.Events = 768 + rng.Intn(512)
			}
		}
		if o.Storage {
			rp.Writes = 96 + rng.Intn(64)
			if r == killSWRound {
				rp.KillSW = 1 + rng.Intn(2)
				// The victim must still be mid-stream when the crash
				// lands, so the kill round replays a longer record set.
				rp.Writes = 384 + rng.Intn(128)
			}
		}
		if r == hotRound {
			// Never node 1: it hosts the autopilot (and the EB sources).
			rp.Hot = i2o.NodeID(2 + rng.Intn(o.Nodes-1))
		}
	}
	return rounds
}

// sendRules returns the send-path fault rule list for the given intensity.
func sendRules(level string) []faults.Rule {
	switch level {
	case "light":
		return []faults.Rule{
			{Op: faults.Drop, Prob: 0.02},
			{Op: faults.Delay, Nth: 37, Delay: 50 * time.Microsecond},
			{Op: faults.Error, Nth: 53},
			{Op: faults.Duplicate, Nth: 71},
		}
	case "heavy":
		return []faults.Rule{
			{Op: faults.Drop, Prob: 0.06},
			{Op: faults.Duplicate, Prob: 0.02},
			{Op: faults.Delay, Nth: 23, Delay: 100 * time.Microsecond},
			{Op: faults.Error, Nth: 19},
		}
	}
	return nil
}

// wireRules returns the tcp wire-path rule list (connection kills, writer
// stalls, wire-level retransmits); only "heavy" runs sever connections.
func wireRules(level string) []faults.Rule {
	if level != "heavy" {
		return nil
	}
	return []faults.Rule{
		{Op: faults.Drop, Nth: 97}, // severs the connection; redial resends
		{Op: faults.Delay, Nth: 41, Delay: 200 * time.Microsecond},
		{Op: faults.Duplicate, Nth: 61},
	}
}

// sendInjector builds the send-path injector for one node, or nil when the
// run injects no faults.  The injector seed is derived from (run seed,
// node), so every node's per-peer streams are independent and reproducible.
func sendInjector(o Options, node i2o.NodeID) *faults.Injector {
	rules := sendRules(o.Faults)
	if rules == nil {
		return nil
	}
	in := faults.New(deriveSeed(o.Seed, 0x5E4D<<16|uint64(node)))
	for _, r := range rules {
		in.Add(r)
	}
	return in
}

// wireInjector builds the tcp wire-path injector for one node, or nil.
func wireInjector(o Options, node i2o.NodeID) *faults.Injector {
	rules := wireRules(o.Faults)
	if rules == nil || !strings.Contains(o.Fabric, "tcp") {
		return nil
	}
	in := faults.New(deriveSeed(o.Seed, 0x317E<<16|uint64(node)))
	for _, r := range rules {
		in.Add(r)
	}
	return in
}

// previewFrames is how many per-peer verdicts PlanString renders per link.
const previewFrames = 48

func opChar(op faults.Op) byte {
	switch op {
	case faults.Drop:
		return 'D'
	case faults.Delay:
		return 'y'
	case faults.Error:
		return 'E'
	case faults.Duplicate:
		return '2'
	}
	return '.'
}

func appendStreamPreview(b *strings.Builder, label string, mk func(i2o.NodeID) *faults.Injector, nodes int, key func(i2o.NodeID) uint64) {
	for s := 1; s <= nodes; s++ {
		in := mk(i2o.NodeID(s))
		if in == nil {
			return
		}
		for d := 1; d <= nodes; d++ {
			if d == s {
				continue
			}
			line := make([]byte, previewFrames)
			for k := range line {
				line[k] = opChar(in.NextFor(key(i2o.NodeID(d))).Op)
			}
			fmt.Fprintf(b, "  %s %d->%d: %s\n", label, s, d, line)
		}
	}
}

// PlanString renders the complete deterministic schedule of a run: the
// round script and, for faulty runs, the rule lists plus the first
// previewFrames verdicts of every per-peer fault stream.  It is a pure
// function of Options, so `xdaqsoak -seed N` prints the same bytes every
// time — the reproducibility contract the harness's tests assert.
func PlanString(o Options) string {
	o = o.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "chaos plan: seed=%d fabric=%s nodes=%d rounds=%d workers=%d faults=%s",
		o.Seed, o.Fabric, o.Nodes, o.Rounds, o.Workers, o.Faults)
	fmt.Fprintf(&b, " kill=%v rescale=%v bulk=%v eventbuilder=%v killbu=%v storage=%v killsw=%v",
		o.Kill, o.Rescale, o.Bulk, o.EventBuilder, o.KillBU, o.Storage, o.KillSW)
	fmt.Fprintf(&b, " hotdev=%v killcp=%v autopilot=%v\n", o.HotDev, o.KillCP, o.Policy != "")

	if rules := sendRules(o.Faults); rules != nil {
		b.WriteString("send rules (per-peer streams):\n")
		for i, r := range rules {
			fmt.Fprintf(&b, "  [%d] %v nth=%d prob=%g after=%d limit=%d delay=%v\n",
				i, r.Op, r.Nth, r.Prob, r.After, r.Limit, r.Delay)
		}
		appendStreamPreview(&b, "send", func(n i2o.NodeID) *faults.Injector { return sendInjector(o, n) }, o.Nodes,
			func(d i2o.NodeID) uint64 { return uint64(d) })
	}
	if rules := wireRules(o.Faults); rules != nil && strings.Contains(o.Fabric, "tcp") {
		b.WriteString("wire rules (tcp writer + bulk lane, per-peer streams):\n")
		for i, r := range rules {
			fmt.Fprintf(&b, "  [%d] %v nth=%d delay=%v\n", i, r.Op, r.Nth, r.Delay)
		}
		appendStreamPreview(&b, "wire", func(n i2o.NodeID) *faults.Injector { return wireInjector(o, n) }, o.Nodes,
			func(d i2o.NodeID) uint64 { return uint64(d) })
		// The rendezvous lane draws from its own per-peer streams of the
		// same injector (tcp.BulkFaultStream), so bulk-frame faults have
		// their own deterministic schedule.  Preview them separately:
		// these draws come from fresh injectors, leaving the verdict
		// sequences above unperturbed.
		appendStreamPreview(&b, "wire-bulk", func(n i2o.NodeID) *faults.Injector { return wireInjector(o, n) }, o.Nodes,
			func(d i2o.NodeID) uint64 { return tcp.BulkFaultStream(d) })
	}

	b.WriteString("rounds:\n")
	for r, rp := range buildRounds(o) {
		fmt.Fprintf(&b, "  round %d:", r+1)
		if rp.Dispatchers != nil {
			fmt.Fprintf(&b, " dispatchers=%v", rp.Dispatchers)
		}
		if rp.Kill != 0 {
			fmt.Fprintf(&b, " kill=node%d", rp.Kill)
		}
		if rp.Bulk > 0 {
			fmt.Fprintf(&b, " bulk=%dB", rp.Bulk)
		}
		if rp.Events > 0 {
			fmt.Fprintf(&b, " events=%d", rp.Events)
		}
		if rp.KillBU > 0 {
			fmt.Fprintf(&b, " killbu=%d", rp.KillBU-1)
		}
		if rp.Writes > 0 {
			fmt.Fprintf(&b, " writes=%d", rp.Writes)
		}
		if rp.KillSW > 0 {
			fmt.Fprintf(&b, " killsw=%d", rp.KillSW-1)
		}
		if rp.Hot != 0 {
			fmt.Fprintf(&b, " hot=node%d", rp.Hot)
		}
		b.WriteString("\n")
	}
	return b.String()
}
