// Package chaos is a deterministic, seeded chaos/soak harness for XDAQ-go
// clusters.  It drives a multi-node in-process cluster — loopback, TCP, GM,
// or the paper's mixed GM-data/TCP-control deployment (§5) — through
// randomized workloads (request/reply storms, fire-and-forget sequence
// streams, SGL bulk transfers, DAQ event-builder rounds, concurrent
// failovers, dispatcher rescales) while a fault schedule derived from
// internal/transport/faults runs underneath: drops, delays, duplicated wire
// frames, injected send errors, severed TCP connections, ring-full
// pressure, and data-transport kills with health-monitor failover.
//
// After every round the cluster is driven to a quiescent point and a set of
// pluggable invariant checkers validates global properties the paper's
// frame discipline implies: per-(sender,peer,worker) frame conservation
// with no duplication or reordering, zero leaked buffer-pool blocks,
// pending-reply tables drained to empty, inbound schedulers empty, every
// proxy route naming a live (or failed-over) peer transport, and health
// state machines consistent across nodes.
//
// Every run is reproducible from a single seed: the full fault schedule and
// round script are a pure function of Options (see PlanString), the seed is
// printed in every failure, and failure reports attach each node's trace
// ring.  Short seeded runs are tier-1 tests (`go test ./internal/chaos`);
// cmd/xdaqsoak runs the same harness for minutes or hours.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xdaq/internal/cluster"
	"xdaq/internal/controlplane"
	"xdaq/internal/executive"
	"xdaq/internal/health"
	"xdaq/internal/i2o"
	"xdaq/internal/pta"
	"xdaq/internal/transport/faults"
	"xdaq/internal/transport/gm"
	"xdaq/internal/transport/loopback"
	"xdaq/internal/transport/tcp"
)

// Options selects the cluster shape, workload mix, and fault intensity of
// one chaos run.  The zero value is completed by withDefaults; Seed is the
// only field without a useful default — equal Options always produce equal
// fault schedules and round scripts.
type Options struct {
	// Seed drives every random decision of the run.
	Seed int64

	// Nodes is the cluster size; defaults to 3.
	Nodes int

	// Fabric selects the interconnect: "loopback" (default), "tcp", "gm",
	// or "gm+tcp" (GM data plane with TCP control plane and failover).
	Fabric string

	// Rounds is how many storm/quiesce/check cycles to run; defaults to 3.
	Rounds int

	// Duration is the total storm time, split evenly across rounds;
	// defaults to 900ms.
	Duration time.Duration

	// Faults is the injected-fault intensity: "none" (default), "light",
	// or "heavy".
	Faults string

	// Workers is the number of storm goroutines per node; defaults to 3.
	Workers int

	// Kill stops one node's data transport mid-run; requires a fabric
	// with a fallback route ("gm+tcp") for the cluster to stay whole.
	Kill bool

	// Rescale churns every node's dispatcher count between rounds.
	Rescale bool

	// Bulk adds SGL bulk transfers on serializing fabrics.
	Bulk bool

	// EventBuilder adds DAQ event-builder rounds: a hierarchical
	// deployment (EVM/RU on the first node, RU plus aggregator on the
	// second, two sharded BUs on the last) re-armed every round.
	EventBuilder bool

	// KillBU kills one builder unit mid-round (and evicts it from the
	// shard map) on seeded rounds, so the exactly-once audit exercises
	// the EVM's dynamic rebalancing.  Requires EventBuilder.
	KillBU bool

	// Storage adds striped-storage rounds: a seeded record stream is
	// replayed into two storage writer devices every round, and the
	// on-disk segment set is audited for exactly-once persistence at
	// every quiescent point.
	Storage bool

	// KillSW crashes one storage writer mid-replay (torn segment tail,
	// no acks) on a seeded round, reopens it, and replays the full
	// stream — recovery must converge with zero lost and zero duplicated
	// events.  Requires Storage.
	KillSW bool

	// Policy arms the self-tuning control plane: the script is compiled
	// at build time and a cp.autopilot device on node 1 scrapes every
	// member and actuates the policy's rules throughout the run.
	// HotDevPolicy is the canonical script for HotDev runs.
	Policy string

	// HotDev skews one device's service time mid-run on a seeded round:
	// the victim's echo handler gains a multi-millisecond stall that
	// serializes its node behind a single dispatcher.  Requires Policy —
	// the autopilot must detect the sustained queue pressure, rescale
	// the victim's dispatchers, and the storm p99 must recover (the
	// policy convergence checker asserts all three).  Incompatible with
	// Rescale, which would fight the autopilot for the same knob.
	HotDev bool

	// KillCP closes the autopilot at the start of the last round: the
	// cluster must degrade gracefully to the last-actuated state — every
	// knob keeps its value and ExecPolicyGet reports the autopilot off.
	// Requires Policy.
	KillCP bool

	// Checkers validates invariants at every quiescent point; defaults to
	// DefaultCheckers().
	Checkers []Checker

	// Logf sinks progress diagnostics; nil silences them.
	Logf func(format string, args ...any)

	// sabotage, when set by a test, runs after the warm-up baseline is
	// captured — the hook for demonstrating that a deliberately broken
	// invariant is caught and reported with seed and trace dump.
	sabotage func(*Cluster)
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Fabric == "" {
		o.Fabric = "loopback"
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.Duration <= 0 {
		o.Duration = 900 * time.Millisecond
	}
	if o.Faults == "" {
		o.Faults = "none"
	}
	if o.Workers <= 0 {
		o.Workers = 3
	}
	return o
}

// Node is one cluster member under chaos.
type Node struct {
	ID    i2o.NodeID
	Exec  *executive.Executive
	Agent *pta.Agent
	Mon   *health.Monitor
	MS    *cluster.Membership
	TCP   *tcp.Transport
	GM    *gm.Transport
	LB    *loopback.Endpoint

	// Inj and WInj are the node's send-path and tcp wire-path injectors
	// (nil on fault-free runs); conservation budgets read their per-rule
	// hit counts.
	Inj  *faults.Injector
	WInj *faults.Injector

	// baseline is the pool-block population at the last clean quiescent
	// point, normalized by subtracting one block per live TCP connection
	// (each connection's readLoop legitimately holds a receive block, and
	// failover or redial move the connection count mid-run); the pool
	// checker ratchets it down and reports any rise.
	baseline int64

	// echoTID / seqTID are proxies to each peer's workload devices.
	echoTID map[i2o.NodeID]i2o.TID
	seqTID  map[i2o.NodeID]i2o.TID

	// nextSeq[worker][dst] numbers this node's fire-and-forget stream per
	// (worker, destination); only successfully sent frames consume one.
	nextSeq []map[i2o.NodeID]uint32

	// recvMu guards recv: (src<<16|worker) -> sequence numbers in arrival
	// order, recorded by the chaos.seq device handler.
	recvMu sync.Mutex
	recv   map[uint32][]uint32

	echoOK  atomic.Uint64
	echoErr atomic.Uint64
	seqSent atomic.Uint64
	seqErr  atomic.Uint64

	// hotNS is the injected echo service-time skew in nanoseconds (0:
	// none); the HotDev round stores it on the victim.
	hotNS atomic.Int64
}

// poolPopulation returns the node's pool-block population excluding the
// one receive block each live TCP connection holds: the remainder is what
// must return to (or below) the baseline at every quiescent point.
func (n *Node) poolPopulation() int64 {
	in := n.Exec.Allocator().Stats().InUse
	if n.TCP != nil {
		in -= int64(n.TCP.Conns())
	}
	return in
}

// sentTo returns how many seq frames this node successfully sent to dst on
// behalf of worker w.
func (n *Node) sentTo(w int, dst i2o.NodeID) uint32 {
	if w >= len(n.nextSeq) {
		return 0
	}
	return n.nextSeq[w][dst]
}

// Cluster is one running chaos deployment plus everything the invariant
// checkers need to audit it.
type Cluster struct {
	Opts   Options
	Nodes  []*Node
	rounds []roundPlan
	plan   string

	// lossy records that frames may legitimately be missing (drop faults,
	// severed connections, or a transport kill happened); dups records
	// that duplicate faults are active.  The conservation checker loosens
	// exactly these two screws and no others.
	lossy bool
	dups  bool

	// gmDead marks nodes whose GM transport was killed.
	gmDead map[i2o.NodeID]bool

	// poolRebase tells the next pool audit to re-take its per-node
	// baselines instead of comparing: a kill/failover legitimately moves
	// the steady-state pool population (fresh connection read blocks,
	// released GM receive rings).
	poolRebase bool

	// eb is the persistent event-builder deployment (nil unless
	// Options.EventBuilder).
	eb *ebState

	// sw is the persistent striped-storage deployment (nil unless
	// Options.Storage).
	sw *swState

	// ap is the control-plane autopilot on node 1 (nil unless
	// Options.Policy); apClosed and apLastDisp record a KillCP
	// degradation — the autopilot was deliberately closed mid-run, with
	// every node's dispatcher count captured right after the close so
	// the policy checker can assert nothing rolled back.
	ap         *controlplane.Autopilot
	apClosed   bool
	apLastDisp map[i2o.NodeID]int

	// hot* record the HotDev round for the policy convergence checker:
	// the victim, the controller tick when the skew was injected, the
	// storm ping p99 before the skew and after the autopilot's rescale,
	// and whether the rescale was observed at all.
	hotVictim    i2o.NodeID
	hotTick0     uint64
	hotActuated  bool
	hotBaseline  time.Duration
	hotRecovered time.Duration

	mu         sync.Mutex
	violations []string
}

// Lossy reports whether frames may legitimately be missing this run:
// drop faults are armed, a connection was severed, or a transport was
// killed.  Custom checkers consult it before demanding completeness.
func (c *Cluster) Lossy() bool { return c.lossy }

// Dups reports whether duplicate faults are armed, i.e. whether a checker
// must tolerate bounded frame duplication.
func (c *Cluster) Dups() bool { return c.dups }

// violate records one invariant violation.
func (c *Cluster) violate(format string, args ...any) {
	c.mu.Lock()
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

func (c *Cluster) logf(format string, args ...any) {
	if c.Opts.Logf != nil {
		c.Opts.Logf(format, args...)
	}
}

// node returns the member with the given identity.
func (c *Cluster) node(id i2o.NodeID) *Node {
	return c.Nodes[int(id)-1]
}

// Report is the outcome of a run.  String() renders everything a human
// needs to reproduce and debug a failure: the seed, the plan, the
// violations, and each node's trace ring.
type Report struct {
	Seed       int64
	Plan       string
	Violations []string
	Traces     map[i2o.NodeID]string

	EchoOK, EchoErr   uint64
	SeqSent, SeqRecvd uint64
}

// Failed reports whether any invariant checker fired.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos run seed=%d: echo ok=%d err=%d, seq sent=%d recvd=%d, violations=%d\n",
		r.Seed, r.EchoOK, r.EchoErr, r.SeqSent, r.SeqRecvd, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	if r.Failed() {
		fmt.Fprintf(&b, "reproduce with: xdaqsoak -seed %d\n", r.Seed)
		b.WriteString(r.Plan)
		for id, dump := range r.Traces {
			fmt.Fprintf(&b, "--- trace ring node %d ---\n%s", id, dump)
		}
	}
	return b.String()
}

// Run executes one chaos run and returns its report.  The error is non-nil
// exactly when an invariant checker fired (or the cluster could not be
// built); its text includes the seed and the full report.
func Run(o Options) (*Report, error) {
	o = o.withDefaults()
	c, err := build(o)
	if err != nil {
		return nil, fmt.Errorf("chaos: build (seed=%d): %w", o.Seed, err)
	}
	defer c.shutdown()

	checkers := o.Checkers
	if checkers == nil {
		checkers = DefaultCheckers()
	}

	// Warm-up: a short clean storm settles lazy allocations (frame pools,
	// per-connection receive blocks, return proxies) before baselines are
	// captured and faults armed.
	c.storm(50 * time.Millisecond)
	if err := c.quiesce(5 * time.Second); err != nil {
		c.violate("warm-up quiesce: %v", err)
	}
	c.rebaseline()
	c.armFaults()
	if o.sabotage != nil {
		o.sabotage(c)
	}

	stormPer := o.Duration / time.Duration(len(c.rounds))
	for r, rp := range c.rounds {
		c.logf("chaos: round %d/%d", r+1, len(c.rounds))
		if rp.Dispatchers != nil {
			for i, n := range c.Nodes {
				n.Exec.SetDispatchers(rp.Dispatchers[i])
			}
		}
		if rp.Kill != 0 {
			c.kill(rp.Kill)
		}
		if o.KillCP && r == len(c.rounds)-1 && c.ap != nil && !c.apClosed {
			c.killAutopilot()
		}
		if rp.Hot != 0 {
			c.hotRound(rp.Hot, stormPer)
		} else {
			c.storm(stormPer)
		}
		if rp.Bulk > 0 {
			c.bulkRound(rp.Bulk)
		}
		if rp.Events > 0 {
			c.eventBuilderRound(r, rp.Events, rp.KillBU)
		}
		if rp.Writes > 0 {
			c.storageRound(r, rp.Writes, rp.KillSW)
		}
		if err := c.quiesce(10 * time.Second); err != nil {
			c.violate("round %d quiesce: %v", r+1, err)
			break // a wedged cluster makes further rounds meaningless
		}
		for _, ck := range checkers {
			for _, v := range ck.Check(c) {
				c.violate("round %d, %s: %s", r+1, ck.Name(), v)
			}
		}
	}

	rep := c.report()
	if rep.Failed() {
		return rep, fmt.Errorf("chaos: %d invariant violation(s), reproduce with seed=%d\n%s",
			len(rep.Violations), rep.Seed, rep.String())
	}
	return rep, nil
}

// build wires the cluster for o.Fabric.  Faults are not armed yet — the
// control traffic of discovery and the warm-up storm run clean, so a build
// never fails because of its own fault schedule.
func build(o Options) (*Cluster, error) {
	if o.Kill && o.Fabric != "gm+tcp" {
		return nil, errors.New("kill requires the gm+tcp fabric (a fallback route)")
	}
	if o.KillBU && !o.EventBuilder {
		return nil, errors.New("killbu requires the event-builder workload")
	}
	if o.KillSW && !o.Storage {
		return nil, errors.New("killsw requires the storage workload")
	}
	if o.HotDev && o.Policy == "" {
		return nil, errors.New("hotdev requires a policy (the autopilot is what rescales the hot node)")
	}
	if o.HotDev && o.Rescale {
		return nil, errors.New("hotdev and rescale fight over the dispatcher knob")
	}
	if o.KillCP && o.Policy == "" {
		return nil, errors.New("killcp requires a policy")
	}
	if o.Nodes < 2 {
		return nil, errors.New("need at least 2 nodes")
	}
	c := &Cluster{
		Opts:   o,
		rounds: buildRounds(o),
		plan:   PlanString(o),
		gmDead: make(map[i2o.NodeID]bool),
	}
	switch o.Faults {
	case "light", "heavy":
		c.lossy, c.dups = true, true
	case "none":
	default:
		return nil, fmt.Errorf("unknown fault level %q", o.Faults)
	}

	var lbFab *loopback.Fabric
	var gmFab *gm.Fabric
	gmRoutes := map[i2o.NodeID]gm.Port{}
	useLB := o.Fabric == "loopback"
	useTCP := o.Fabric == "tcp" || o.Fabric == "gm+tcp"
	useGM := o.Fabric == "gm" || o.Fabric == "gm+tcp"
	switch {
	case useLB:
		lbFab = loopback.NewFabric()
	case useGM:
		gmFab = gm.NewFabric()
		for i := 1; i <= o.Nodes; i++ {
			gmRoutes[i2o.NodeID(i)] = gm.Port(i)
		}
		if !useTCP && o.Fabric != "gm" {
			return nil, fmt.Errorf("unknown fabric %q", o.Fabric)
		}
	case useTCP:
	default:
		return nil, fmt.Errorf("unknown fabric %q", o.Fabric)
	}

	fail := func(err error) (*Cluster, error) {
		c.shutdown()
		return nil, err
	}

	for i := 1; i <= o.Nodes; i++ {
		id := i2o.NodeID(i)
		e := executive.New(executive.Options{
			Name: fmt.Sprintf("chaos%d", id), Node: id,
			RequestTimeout: 2 * time.Second,
			Logf:           func(string, ...any) {},
		})
		e.SetTrace(true)
		agent, err := pta.New(e)
		if err != nil {
			e.Close()
			return fail(err)
		}
		n := &Node{
			ID: id, Exec: e, Agent: agent,
			Inj:     sendInjector(o, id),
			WInj:    wireInjector(o, id),
			echoTID: make(map[i2o.NodeID]i2o.TID),
			seqTID:  make(map[i2o.NodeID]i2o.TID),
			recv:    make(map[uint32][]uint32),
			nextSeq: make([]map[i2o.NodeID]uint32, o.Workers),
		}
		for w := range n.nextSeq {
			n.nextSeq[w] = make(map[i2o.NodeID]uint32)
		}
		c.Nodes = append(c.Nodes, n)

		if useLB {
			ep, err := lbFab.Attach(id)
			if err != nil {
				return fail(err)
			}
			ep.SetMetrics(e.Metrics())
			if err := agent.Register(ep, pta.Task); err != nil {
				return fail(err)
			}
			n.LB = ep
		}
		if useTCP {
			depth := 0
			if o.Faults == "heavy" {
				depth = 32 // small rings: ring-full pressure is part of the schedule
			}
			tr, err := tcp.New(id, e.Allocator(), tcp.Config{
				Listen: "127.0.0.1:0", Metrics: e.Metrics(), RingDepth: depth,
			})
			if err != nil {
				return fail(err)
			}
			if err := agent.Register(tr, pta.Task); err != nil {
				return fail(err)
			}
			n.TCP = tr
		}
		if useGM {
			nic, err := gmFab.Open(gmRoutes[id])
			if err != nil {
				return fail(err)
			}
			tr, err := gm.NewTransport(nic, e.Allocator(), gm.Config{
				Routes: gmRoutes, Metrics: e.Metrics(),
			})
			if err != nil {
				return fail(err)
			}
			if err := agent.Register(tr, pta.Task); err != nil {
				return fail(err)
			}
			n.GM = tr
		}
		if o.Faults != "none" {
			agent.SetRetryPolicy(pta.RetryPolicy{
				Attempts: 4, Backoff: 200 * time.Microsecond, MaxBackoff: 2 * time.Millisecond,
			})
		}
		plugWorkloadDevices(c, n)
	}

	// Routing: TCP peers all-to-all when present; the data route is GM
	// when available, else the single fabric.
	dataRoute := loopback.DefaultName
	if useTCP {
		dataRoute = tcp.PTName
	}
	if useGM {
		dataRoute = gm.PTName
	}
	for _, a := range c.Nodes {
		for _, b := range c.Nodes {
			if a == b {
				continue
			}
			if useTCP {
				a.TCP.AddPeer(b.ID, b.TCP.Addr())
			}
			a.Exec.SetRoute(b.ID, dataRoute)
		}
	}

	// Membership: the bootstrap protocol rides the fabric under test.
	// Node 1 seeds; everyone else joins through it over the already-wired
	// routes (no Wire callback needed in-process).
	for _, n := range c.Nodes {
		ms, err := cluster.NewMembership(cluster.MembershipConfig{
			Exec: n.Exec,
			Self: cluster.Member{Name: fmt.Sprintf("chaos%d", n.ID)},
		})
		if err != nil {
			return fail(err)
		}
		n.MS = ms
	}
	for _, n := range c.Nodes[1:] {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := n.MS.Join(ctx, c.Nodes[0].ID)
		cancel()
		if err != nil {
			return fail(fmt.Errorf("membership join from node %d: %w", n.ID, err))
		}
	}

	// Health monitors with TCP fallback guard the kill/failover scenarios.
	// A peer declared down is evicted from the membership; a recovered one
	// is re-admitted — the membership checker audits this coupling.
	if o.Fabric == "gm+tcp" {
		for _, n := range c.Nodes {
			fb := make(map[i2o.NodeID]string)
			for _, p := range c.Nodes {
				if p != n {
					fb[p.ID] = tcp.PTName
				}
			}
			ms := n.MS
			n.Mon = health.New(n.Exec, health.Config{
				Interval: 25 * time.Millisecond, Timeout: 60 * time.Millisecond,
				Threshold: 3, Fallback: fb,
				OnState: func(node i2o.NodeID, s health.State) {
					switch s {
					case health.Down:
						ms.Evict(node)
						// A node that is down took its builder units
						// with it: hand their event ranges to the
						// survivors.  c.eb is consulted at fire time —
						// the event builder is wired after the
						// monitors start.
						if c.eb != nil {
							c.eb.evm.PeerDown(node)
						}
					case health.Up:
						ms.Revive(node)
					}
				},
			})
		}
	}

	// Discover every peer's workload devices (clean control traffic).
	for _, n := range c.Nodes {
		for _, p := range c.Nodes {
			if p == n {
				continue
			}
			et, err := n.Exec.Discover(p.ID, echoClass, 0)
			if err != nil {
				return fail(fmt.Errorf("discover echo on %d from %d: %w", p.ID, n.ID, err))
			}
			st, err := n.Exec.Discover(p.ID, seqClass, 0)
			if err != nil {
				return fail(fmt.Errorf("discover seq on %d from %d: %w", p.ID, n.ID, err))
			}
			n.echoTID[p.ID], n.seqTID[p.ID] = et, st
		}
	}
	if o.EventBuilder {
		if err := c.setupEventBuilder(); err != nil {
			return fail(err)
		}
	}
	if o.Storage {
		if err := c.setupStorage(); err != nil {
			return fail(err)
		}
	}
	// The autopilot goes on node 1 (never a kill victim) once the routes
	// and membership are up, so its very first scrape reaches everyone.
	if o.Policy != "" {
		pol, err := controlplane.Load("chaos-policy", o.Policy)
		if err != nil {
			return fail(err)
		}
		ids := make([]i2o.NodeID, len(c.Nodes))
		for i, n := range c.Nodes {
			ids[i] = n.ID
		}
		ap, err := controlplane.NewAutopilot(controlplane.AutopilotConfig{
			Exec:     c.Nodes[0].Exec,
			Policy:   pol,
			Interval: policyTick,
			Nodes:    func() []i2o.NodeID { return ids },
		})
		if err != nil {
			return fail(err)
		}
		c.ap = ap
	}
	return c, nil
}

// armFaults installs the seeded injectors on every transport.  Called after
// warm-up so discovery and baseline capture are never faulted.
func (c *Cluster) armFaults() {
	if c.Opts.Faults == "none" {
		return
	}
	for _, n := range c.Nodes {
		if n.LB != nil {
			n.LB.SetFaults(n.Inj)
		}
		if n.GM != nil {
			n.GM.SetFaults(n.Inj)
		}
		if n.TCP != nil {
			n.TCP.SetFaults(n.Inj)
			if n.WInj != nil {
				n.TCP.SetWireFaults(n.WInj)
			}
		}
	}
}

// kill stops the victim's GM transport: its data plane vanishes mid-run and
// every health monitor must fail the routes over to TCP.
func (c *Cluster) kill(victim i2o.NodeID) {
	n := c.node(victim)
	if n.GM == nil || c.gmDead[victim] {
		return
	}
	c.logf("chaos: killing GM transport of node %d", victim)
	n.GM.Stop()
	c.gmDead[victim] = true
	c.lossy = true // frames in flight on the dead fabric are gone

	// Wait for the health monitors to fail the dead data plane over to the
	// TCP control plane: every survivor's route to the victim, and every
	// route of the victim itself, must leave GM.  The routes checker then
	// validates the whole table strictly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		settled := true
		for _, p := range c.Nodes {
			if p == n {
				continue
			}
			if r, ok := p.Exec.Route(victim); !ok || r == gm.PTName {
				settled = false
			}
			if r, ok := n.Exec.Route(p.ID); !ok || r == gm.PTName {
				settled = false
			}
		}
		if settled {
			// Failover dials fresh TCP connections, and every live
			// connection's read loop owns one pool block (allocated lazily
			// at the first inbound frame); the victim's stopped GM released
			// its posted receive ring.  Both legitimately shift the
			// steady-state pool population, so the next pool audit re-takes
			// its baselines instead of comparing against the pre-kill ones.
			c.poolRebase = true
			return
		}
		if time.Now().After(deadline) {
			c.violate("failover after killing node %d's GM did not complete within 5s", victim)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// quiesce waits for every node to drain: empty inbound scheduler and empty
// pending-reply table, stable across consecutive samples.  Health probes
// keep running, so a single idle sample is not enough.
func (c *Cluster) quiesce(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	idleRuns := 0
	for {
		idle := true
		for _, n := range c.Nodes {
			if n.Exec.QueueLen() != 0 || n.Exec.PendingRequests() != 0 {
				idle = false
				break
			}
		}
		if idle {
			if idleRuns++; idleRuns >= 3 {
				return nil
			}
		} else {
			idleRuns = 0
		}
		if time.Now().After(deadline) {
			var b strings.Builder
			for _, n := range c.Nodes {
				fmt.Fprintf(&b, " node%d(queue=%d pending=%d)",
					n.ID, n.Exec.QueueLen(), n.Exec.PendingRequests())
			}
			return fmt.Errorf("cluster did not drain within %v:%s", budget, b.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// rebaseline captures the current connection-normalized pool population as
// every node's clean floor.  Called once after warm-up; the pool checker
// ratchets it.
func (c *Cluster) rebaseline() {
	for _, n := range c.Nodes {
		n.baseline = n.poolPopulation()
	}
}

func (c *Cluster) report() *Report {
	rep := &Report{
		Seed: c.Opts.Seed, Plan: c.plan,
		Violations: append([]string(nil), c.violations...),
	}
	for _, n := range c.Nodes {
		rep.EchoOK += n.echoOK.Load()
		rep.EchoErr += n.echoErr.Load()
		rep.SeqSent += n.seqSent.Load()
		n.recvMu.Lock()
		for _, seqs := range n.recv {
			rep.SeqRecvd += uint64(len(seqs))
		}
		n.recvMu.Unlock()
	}
	if rep.Failed() {
		rep.Traces = make(map[i2o.NodeID]string)
		for _, n := range c.Nodes {
			rep.Traces[n.ID] = n.Exec.TraceRing().Dump()
		}
	}
	return rep
}

func (c *Cluster) shutdown() {
	if c.ap != nil {
		c.ap.Close() // idempotent after a KillCP round
	}
	if c.sw != nil {
		c.sw.shutdown()
	}
	for _, n := range c.Nodes {
		if n.Mon != nil {
			n.Mon.Close()
		}
		if n.MS != nil {
			n.MS.Close()
		}
	}
	for _, n := range c.Nodes {
		n.Agent.Close()
		n.Exec.Close()
	}
}
