package chaos

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"xdaq/internal/i2o"
)

// BenchmarkClusterSkewedLoad measures the round-trip latency a
// well-behaved client sees against a node whose echo device has turned
// hot, while a background flood keeps that device saturated.  Dispatch
// is per-device exclusive, so the hot handler itself cannot be
// parallelized — what a wider pool buys is relief from head-of-line
// blocking: with one dispatcher every frame on the node waits out the
// stall in front of it; with the pool rescaled, other devices keep being
// served while the hot one sleeps.
//
// autopilot=off pins the victim at one dispatcher; autopilot=on lets the
// shipped hot-rescale policy widen the pool from the metrics scrape
// before the timed section.  The pair is the control plane's archived
// performance claim (bench-gate compares autopilot=on against
// autopilot=off in BENCH_cluster.json).
func BenchmarkClusterSkewedLoad(b *testing.B) {
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("autopilot=%s", map[bool]string{true: "on", false: "off"}[on]), func(b *testing.B) {
			benchSkewedLoad(b, on)
		})
	}
}

func benchSkewedLoad(b *testing.B, autopilot bool) {
	o := Options{
		Seed:   1,
		Fabric: "loopback",
		Nodes:  2,
		Rounds: 1,
	}
	if autopilot {
		o.Policy = HotDevPolicy
	}
	c, err := build(o.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	defer c.shutdown()

	const victim = i2o.NodeID(2)
	v := c.node(victim)
	v.hotNS.Store(int64(hotServiceTime))
	src := c.Nodes[0]

	// Background flood: enough concurrent echoes that the victim's queue
	// depth stays above the policy trigger (> 8 sustained) for the whole
	// run.  Default priority, not the zero value (urgent): at urgent the
	// flood would outrank the autopilot's own scrape frames and starve
	// the control loop this benchmark exercises.
	const echoLanes = 16
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < echoLanes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				rep, err := src.Exec.RequestContext(ctx, &i2o.Message{
					Priority: i2o.PriorityDefault,
					Target:   src.echoTID[victim], Initiator: i2o.TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: fnEcho,
					Payload: []byte("bench"),
				})
				cancel()
				if err == nil {
					rep.Release()
				}
			}
		}()
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	// Convergence (on) or an equal settling window (off), outside the
	// timed section.
	if autopilot {
		if !waitTrue(5*time.Second, func() bool { return v.Exec.Dispatchers() > 1 }) {
			b.Fatal("autopilot never rescaled the victim during warm-up")
		}
	} else {
		time.Sleep(200 * time.Millisecond)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := src.Exec.PingContext(ctx, victim)
		cancel()
		if err != nil {
			b.Fatalf("ping %d: %v", i, err)
		}
	}
	b.StopTimer()
}
