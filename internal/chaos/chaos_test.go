package chaos

import (
	"strings"
	"testing"
	"time"
)

// Scenario 1: a node's GM data plane is killed mid-run; the health
// monitors must fail every affected route over to the TCP control plane
// and the cluster must finish the run with every invariant intact.
func TestScenarioKillFailover(t *testing.T) {
	rep, err := Run(Options{
		Seed:     4242,
		Fabric:   "gm+tcp",
		Nodes:    3,
		Rounds:   3,
		Duration: 450 * time.Millisecond,
		Kill:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EchoOK == 0 || rep.SeqRecvd == 0 {
		t.Fatalf("storm moved no traffic: %s", rep)
	}
}

// Scenario 2: batched TCP under heavy send- and wire-path faults — drops,
// injected errors, duplicated frames, severed connections riding the
// redial, ring-full backpressure from deliberately small rings — plus SGL
// bulk transfers.  Conservation must hold in its lossy/duplicated form:
// nothing corrupted, nothing reordered, nothing invented.
func TestScenarioWireFaultsTCP(t *testing.T) {
	rep, err := Run(Options{
		Seed:     777,
		Fabric:   "tcp",
		Nodes:    3,
		Rounds:   3,
		Duration: 450 * time.Millisecond,
		Faults:   "heavy",
		Bulk:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeqRecvd == 0 {
		t.Fatalf("heavy faults starved the run completely: %s", rep)
	}
}

// Scenario 3: dispatcher rescales under load on the pointer-passing
// fabric, with the DAQ event builder riding along.  The run is lossless,
// so conservation is checked at full strictness: every frame, exactly
// once, in order, and every event assembled.
func TestScenarioDispatcherRescale(t *testing.T) {
	rep, err := Run(Options{
		Seed:         90125,
		Fabric:       "loopback",
		Nodes:        3,
		Rounds:       3,
		Duration:     450 * time.Millisecond,
		Rescale:      true,
		EventBuilder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EchoErr != 0 {
		t.Fatalf("clean run had %d echo errors: %s", rep.EchoErr, rep)
	}
}

// Scenario 4: a builder unit is killed mid-round and evicted from the
// shard map; the EVM must rebalance its event range onto the surviving
// builder with every budgeted event built exactly once — the tentpole's
// failover invariant under the seeded harness.
func TestScenarioKillBuilderUnit(t *testing.T) {
	rep, err := Run(Options{
		Seed:         404,
		Fabric:       "loopback",
		Nodes:        3,
		Rounds:       3,
		Duration:     450 * time.Millisecond,
		EventBuilder: true,
		KillBU:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Plan, "killbu=") {
		t.Fatalf("plan scheduled no builder kill:\n%s", rep.Plan)
	}
}

// Scenario 5: the streaming-storage tentpole under the seeded harness —
// a storage writer is crashed mid-replay (torn segment tail, silent
// drops), reopened, and the stream replayed; the on-disk audit must
// find every record exactly once on its stripe.
func TestScenarioKillStorageWriter(t *testing.T) {
	rep, err := Run(Options{
		Seed:     505,
		Fabric:   "loopback",
		Nodes:    3,
		Rounds:   3,
		Duration: 300 * time.Millisecond,
		Storage:  true,
		KillSW:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Plan, "killsw=") {
		t.Fatalf("plan scheduled no storage-writer kill:\n%s", rep.Plan)
	}
}

// Scenario 6: a node's echo device turns hot mid-run and the autopilot —
// scraping cluster metrics and evaluating the shipped hot-rescale policy —
// must widen the victim's dispatch pool within its tick budget, without
// flapping, and bring the storm p99 back down while the device stays hot.
// The policy checker asserts the whole convergence contract under -race.
func TestScenarioHotDeviceAutopilot(t *testing.T) {
	rep, err := Run(Options{
		Seed:     606,
		Fabric:   "loopback",
		Nodes:    3,
		Rounds:   3,
		Duration: 1200 * time.Millisecond,
		HotDev:   true,
		Policy:   HotDevPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Plan, "hot=node") {
		t.Fatalf("plan scheduled no hot round:\n%s", rep.Plan)
	}
	if rep.EchoOK == 0 || rep.SeqRecvd == 0 {
		t.Fatalf("storm moved no traffic: %s", rep)
	}
}

// Scenario 7: the controller itself is killed on the last round after a
// hot round has actuated.  Degradation must be graceful: the cluster
// holds the last-actuated dispatcher counts and a remote ExecPolicyGet
// reports the autopilot off — no rollback, no orphaned actuations.
func TestScenarioKillControlPlane(t *testing.T) {
	rep, err := Run(Options{
		Seed:     707,
		Fabric:   "loopback",
		Nodes:    3,
		Rounds:   3,
		Duration: 1200 * time.Millisecond,
		HotDev:   true,
		KillCP:   true,
		Policy:   HotDevPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Plan, "killcp=true") {
		t.Fatalf("plan does not record the controller kill:\n%s", rep.Plan)
	}
}

// A deliberately broken invariant must be caught and reported with the
// seed and a trace-ring dump — the harness's own failure path is part of
// the contract (a checker that cannot fail checks nothing).
func TestSabotageIsCaught(t *testing.T) {
	_, err := Run(Options{
		Seed:     1337,
		Fabric:   "loopback",
		Nodes:    2,
		Rounds:   1,
		Duration: 60 * time.Millisecond,
		sabotage: func(c *Cluster) {
			// Leak one pool block: allocate a buffer and drop it on the
			// floor still referenced.
			if _, err := c.Nodes[0].Exec.Alloc(64); err != nil {
				t.Fatalf("sabotage alloc: %v", err)
			}
		},
	})
	if err == nil {
		t.Fatal("leaked a pool block, but no checker fired")
	}
	msg := err.Error()
	for _, want := range []string{"seed=1337", "pool", "leaked", "trace ring node"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("failure report lacks %q:\n%s", want, msg)
		}
	}
}

// The whole schedule — fault rules, per-peer stream verdicts, kill
// victims, rescales, bulk sizes — must be a pure function of the seed:
// two renders are byte-identical, and a different seed diverges.
func TestPlanReproducible(t *testing.T) {
	o := Options{
		Seed:   31337,
		Fabric: "tcp",
		Nodes:  3,
		Faults: "heavy",
		Kill:   false,
		Bulk:   true,
	}
	a, b := PlanString(o), PlanString(o)
	if a != b {
		t.Fatalf("same options, different plans:\n%s\n----\n%s", a, b)
	}
	o2 := o
	o2.Seed = 31338
	if PlanString(o2) == a {
		t.Fatal("different seeds produced identical plans")
	}
	if !strings.Contains(a, "seed=31337") {
		t.Fatalf("plan does not name its seed:\n%s", a)
	}
}

// Two full runs from the same seed carry the same plan in their reports —
// the reproduce-from-the-printed-seed workflow (`xdaqsoak -seed N`).
func TestRunPlansMatchAcrossRuns(t *testing.T) {
	o := Options{
		Seed:     55,
		Fabric:   "tcp",
		Nodes:    2,
		Rounds:   2,
		Duration: 120 * time.Millisecond,
		Faults:   "light",
	}
	r1, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Plan != r2.Plan {
		t.Fatalf("same seed, different schedules:\n%s\n----\n%s", r1.Plan, r2.Plan)
	}
}
