package chaos

import (
	"math/rand"
	"os"
	"sync"
	"time"

	"xdaq/internal/i2o"
	"xdaq/internal/storage"
)

// swState is the persistent striped-storage deployment riding along with
// the chaos workload: two storage writer devices — one on the first
// node, one on the last — with a replay reader on the middle node
// streaming seeded record sets into them, striped by event id.  The
// modules are plugged once at build time; every storage round extends
// the expected record set and the storageChecker audits the on-disk
// segments for exactly-once persistence at every quiescent point.
//
// A KillSW round crashes one writer mid-replay (torn segment tail, no
// acks — dead-peer semantics), reopens it, and replays the round's full
// set: the recovered duplicate filter drops everything that survived
// the crash and the replay restores the torn-off suffix, which is the
// tentpole's zero-lost/zero-duplicated recovery invariant.
type swState struct {
	dir string
	sws []*storage.SW
	rep *storage.Replayer

	mu         sync.Mutex
	expected   []storage.Record // every record replayed so far, in event order
	nextEvent  uint64
	killRounds int
}

// swArena and swSimDelay shape the chaos writers: small arenas rotating
// through a simulated per-stripe disk keep a replay pass long enough
// for a mid-stream crash to land in the middle of real work.
const (
	swArena    = 4 << 10
	swSimDelay = 200 * time.Microsecond
)

// setupStorage plugs the storage writers and the replay reader and
// opens one segment per stripe in a scratch directory.
func (c *Cluster) setupStorage() error {
	dir, err := os.MkdirTemp("", "xdaq-chaos-storage-*")
	if err != nil {
		return err
	}
	sw := &swState{dir: dir}
	hosts := []*Node{c.Nodes[0], c.Nodes[len(c.Nodes)-1]}
	for i, n := range hosts {
		s := storage.NewSW(i, n.Exec.Allocator())
		if _, err := n.Exec.Plug(s.Device()); err != nil {
			return err
		}
		w, err := storage.Open(storage.Options{
			Dir: dir, Instance: i, ArenaSize: swArena, SimDelay: swSimDelay,
		})
		if err != nil {
			return err
		}
		s.Attach(w)
		sw.sws = append(sw.sws, s)
	}
	mid := c.Nodes[1]
	sw.rep = storage.NewReplayer(0)
	if _, err := mid.Exec.Plug(sw.rep.Device()); err != nil {
		return err
	}
	targets := make([]i2o.TID, len(hosts))
	for i, n := range hosts {
		tid, err := mid.Exec.Discover(n.ID, storage.ClassSW, i)
		if err != nil {
			return err
		}
		targets[i] = tid
	}
	sw.rep.Configure(targets, 8)
	c.sw = sw
	return nil
}

// shutdown closes the writers and removes the scratch directory.
func (s *swState) shutdown() {
	for _, sw := range s.sws {
		if w := sw.Writer(); w != nil {
			w.Close() // a crashed writer refuses; the scratch dir goes anyway
		}
	}
	os.RemoveAll(s.dir)
}

// storageRound replays `writes` fresh seeded records through the
// striped writers.  When killSW names a victim (instance+1), that
// writer is crashed once the stream is demonstrably mid-stripe, then
// reopened, and the round's set is replayed in full — the pass must
// converge and the cumulative exactly-once audit (storageChecker) must
// still hold at the quiescent point that follows.
//
// Like the event-builder round, a storage round only runs while the
// cluster is lossless: the replayer re-sends on writer backpressure but
// not on silently dropped frames, so under armed faults a wedged pass
// is expected behavior, not an invariant to audit.
func (c *Cluster) storageRound(round, writes, killSW int) {
	sw := c.sw
	if sw == nil {
		return
	}
	if c.lossy {
		c.logf("chaos: round %d: skipping storage replay on a lossy run", round+1)
		return
	}

	// The round's record set is a pure function of (seed, round).
	rng := rand.New(rand.NewSource(deriveSeed(c.Opts.Seed, 0x5709A6E<<8|uint64(round))))
	sw.mu.Lock()
	recs := make([]storage.Record, writes)
	for i := range recs {
		data := make([]byte, 256+rng.Intn(768))
		rng.Read(data)
		recs[i] = storage.Record{Event: sw.nextEvent, Data: data}
		sw.nextEvent++
	}
	sw.expected = append(sw.expected, recs...)
	sw.mu.Unlock()

	if err := sw.rep.Start(recs); err != nil {
		c.violate("round %d: storage replay start: %v", round+1, err)
		return
	}

	victim := killSW - 1
	if victim >= 0 && victim < len(sw.sws) {
		// Crash only after the victim acked real progress, so the torn
		// tail lands mid-stripe rather than on an empty segment.
		s := sw.sws[victim]
		ackedAt := s.Acked()
		deadline := time.Now().Add(3 * time.Second)
		for s.Acked() < ackedAt+5 && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
		c.logf("chaos: round %d: crashing storage writer %d (acked %d)",
			round+1, victim, s.Acked())
		s.Kill()
		st := sw.rep.Wait(250 * time.Millisecond)
		if st.Done {
			c.logf("chaos: round %d: replay finished before the crash landed", round+1)
		}
		if err := s.Reopen(); err != nil {
			c.violate("round %d: storage writer %d reopen: %v", round+1, victim, err)
			return
		}
		rst := s.Stats()
		c.logf("chaos: round %d: writer %d recovered %d events (%d truncations, %d bytes torn)",
			round+1, victim, rst.Recovered, rst.Truncations, rst.TruncatedBytes)
		sw.mu.Lock()
		sw.killRounds++
		sw.mu.Unlock()
		// Replay the full round again: survivors dedup, the torn-off
		// suffix is restored.
		if err := sw.rep.Start(recs); err != nil {
			c.violate("round %d: storage recovery replay start: %v", round+1, err)
			return
		}
	}

	st := sw.rep.Wait(10 * time.Second)
	if !st.Done {
		c.violate("round %d: storage replay wedged: %+v", round+1, st)
		return
	}
	if st.Fails != 0 {
		c.violate("round %d: storage replay saw %d refused events", round+1, st.Fails)
	}

	// Striping: every record of the round must be on exactly its stripe.
	for _, rec := range recs {
		want := int(rec.Event % uint64(len(sw.sws)))
		for i, s := range sw.sws {
			has := s.Writer().Contains(rec.Event)
			if has != (i == want) {
				c.violate("round %d: event %d on stripe %d = %v, want stripe %d",
					round+1, rec.Event, i, has, want)
			}
		}
	}
	c.logf("chaos: round %d storage: %d records replayed (stored=%d dups=%d fulls=%d)",
		round+1, len(recs), st.Stored, st.Dups, st.Fulls)
}
