package chaos

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"xdaq/internal/health"
	"xdaq/internal/i2o"
	"xdaq/internal/storage"
	"xdaq/internal/tid"
	"xdaq/internal/transport/gm"
)

// Checker validates one global invariant over a quiescent cluster.  Run
// invokes every checker after each round's quiesce; each returned string
// is reported as a violation with the checker's name and the seed.
//
// Checkers may poll: "quiescent" is approximate in the presence of health
// probes and transport rings still flushing, so a checker should wait
// (bounded) for its property rather than fail on one hot sample.
type Checker interface {
	Name() string
	Check(c *Cluster) []string
}

// DefaultCheckers returns the full invariant suite:
//
//   - conservation: per (sender, worker, receiver) the numbered frame
//     stream arrives without corruption, duplication (unless duplicate
//     faults are armed) or reordering, and completely on lossless runs;
//   - pool: no node's buffer pool population exceeds its last clean
//     baseline — a leaked reference-counted block never returns;
//   - pending: every pending-reply table drains to empty;
//   - queues: every inbound scheduler drains to empty;
//   - routes: every proxy entry names a registered peer transport, never a
//     killed one, and agrees with the executive's per-node route;
//   - health: every monitored peer settles back to Up;
//   - membership: each node's bootstrap-protocol member set agrees with
//     its own health consensus — peers up are members, peers down are not;
//   - eventbuilder: across every round so far — including rounds that
//     killed a builder unit and rebalanced its event range — each event
//     was built exactly once and the event manager saw no duplicate
//     built notes;
//   - storage: the striped on-disk segment set holds exactly the records
//     replayed so far — every event once, on its stripe, payload intact —
//     including across rounds that crashed and recovered a writer;
//   - workload: the storm actually exercised the cluster;
//   - policy: on autopilot runs the control plane converged — a hot
//     device was rescaled within its tick budget without flapping and
//     the storm p99 recovered; after a controller kill the cluster holds
//     the last-actuated state and reports autopilot=off.
func DefaultCheckers() []Checker {
	return []Checker{
		conservationChecker{},
		poolChecker{},
		pendingChecker{},
		queueChecker{},
		routesChecker{},
		healthChecker{},
		membershipChecker{},
		ebChecker{},
		storageChecker{},
		workloadChecker{},
		policyChecker{},
	}
}

// settle polls sample until it returns the same value three times in a
// row (10ms apart) or the budget expires, and returns the last value.
func settle(budget time.Duration, sample func() int64) int64 {
	deadline := time.Now().Add(budget)
	last, stable := sample(), 0
	for stable < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		v := sample()
		if v == last {
			stable++
		} else {
			last, stable = v, 0
		}
	}
	return last
}

// waitTrue polls cond until it holds or the budget expires.
func waitTrue(budget time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(budget)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// conservationChecker audits the fire-and-forget streams: every received
// frame must have been sent, arrive in order, at most once (or back to
// back up to four times when duplicate faults are armed — send-path and
// wire-path duplication can compound), and — on lossless runs — all of
// them.
type conservationChecker struct{}

func (conservationChecker) Name() string { return "frame-conservation" }

func (conservationChecker) Check(c *Cluster) []string {
	// Frames can still be in flight in transport rings and kernel socket
	// buffers after the executives look idle; wait for the global arrival
	// count to stop moving before auditing.
	settle(3*time.Second, func() int64 {
		var total int64
		for _, n := range c.Nodes {
			n.recvMu.Lock()
			for _, seqs := range n.recv {
				total += int64(len(seqs))
			}
			n.recvMu.Unlock()
		}
		return total
	})

	maxDup := 1
	if c.dups {
		maxDup = 4
	}
	var out []string
	for _, n := range c.Nodes {
		n.recvMu.Lock()
		for key, seqs := range n.recv {
			src, worker := i2o16(key>>16), int(key&0xFFFF)
			sender := c.node(src)
			sent := sender.sentTo(worker, n.ID)
			prev, prevCount := uint32(0), 0
			delivered := 0
			for i, s := range seqs {
				if s < 1 || s > sent {
					out = append(out, fmt.Sprintf(
						"node %d got seq %d from node %d worker %d, but only 1..%d were sent",
						n.ID, s, src, worker, sent))
					continue
				}
				switch {
				case s == prev:
					prevCount++
					if prevCount > maxDup {
						out = append(out, fmt.Sprintf(
							"node %d got seq %d from node %d worker %d %d times (max %d)",
							n.ID, s, src, worker, prevCount, maxDup))
					}
				case s < prev:
					out = append(out, fmt.Sprintf(
						"node %d: stream from node %d worker %d reordered at index %d: %d after %d",
						n.ID, src, worker, i, s, prev))
				default:
					prev, prevCount = s, 1
					delivered++
				}
			}
			if !c.lossy && uint32(delivered) != sent {
				out = append(out, fmt.Sprintf(
					"lossless run, but node %d got %d of %d frames from node %d worker %d",
					n.ID, delivered, sent, src, worker))
			}
		}
		n.recvMu.Unlock()
	}
	return out
}

// poolChecker audits buffer accounting: once the cluster is idle, every
// node's pool population — minus the one receive block each live TCP
// connection legitimately holds — must be back at (or below) its last
// clean baseline.  A block above it is a leaked reference — some path
// retained a frame body and never released it.  The connection adjustment
// matters because fault-driven health failovers and redials dial real
// connections mid-run: their read blocks are live population, not leaks.
type poolChecker struct{}

func (poolChecker) Name() string { return "pool-leaks" }

func (poolChecker) Check(c *Cluster) []string {
	rebase := c.poolRebase
	c.poolRebase = false
	var out []string
	for _, n := range c.Nodes {
		inUse := settle(3*time.Second, n.poolPopulation)
		if rebase {
			// A kill/failover moved the legitimate steady-state population
			// this round; accept the settled value as the new baseline.
			n.baseline = inUse
			continue
		}
		if inUse > n.baseline {
			conns := 0
			if n.TCP != nil {
				conns = n.TCP.Conns()
			}
			out = append(out, fmt.Sprintf(
				"node %d pool holds %d blocks (+%d live tcp conns), baseline %d: %d leaked",
				n.ID, inUse, conns, n.baseline, inUse-n.baseline))
			continue
		}
		// Ratchet downward: the tightest population ever observed is the
		// new floor, so a slow leak cannot hide under a generous warm-up.
		n.baseline = inUse
	}
	return out
}

// pendingChecker verifies every pending-reply table drains: an entry left
// behind is a request whose reply can never arrive yet was never failed.
type pendingChecker struct{}

func (pendingChecker) Name() string { return "pending-replies" }

func (pendingChecker) Check(c *Cluster) []string {
	var out []string
	for _, n := range c.Nodes {
		// Health probes are themselves requests, so an instantaneous
		// nonzero sample is fine; the table must only *reach* empty.
		if !waitTrue(2*time.Second, func() bool { return n.Exec.PendingRequests() == 0 }) {
			out = append(out, fmt.Sprintf(
				"node %d pending-reply table never drained: %d entries",
				n.ID, n.Exec.PendingRequests()))
		}
	}
	return out
}

// queueChecker verifies every inbound scheduler drains to empty.
type queueChecker struct{}

func (queueChecker) Name() string { return "scheduler-drain" }

func (queueChecker) Check(c *Cluster) []string {
	var out []string
	for _, n := range c.Nodes {
		if !waitTrue(2*time.Second, func() bool { return n.Exec.QueueLen() == 0 }) {
			out = append(out, fmt.Sprintf(
				"node %d inbound scheduler never drained: %d frames",
				n.ID, n.Exec.QueueLen()))
		}
	}
	return out
}

// routesChecker audits the TiD tables: every proxy must name a peer
// transport that is actually registered, must not point over a killed
// fabric, and — for discovered device proxies — must agree with the
// executive's current route for that node (return proxies pin the route
// the originating frame arrived on, so only the liveness rules apply to
// them).
type routesChecker struct{}

func (routesChecker) Name() string { return "proxy-routes" }

func (routesChecker) Check(c *Cluster) []string {
	var out []string
	for _, n := range c.Nodes {
		registered := make(map[string]bool)
		for _, r := range n.Agent.Routes() {
			registered[r] = true
		}
		for _, en := range n.Exec.Table().Entries() {
			if en.Kind != tid.Proxy {
				continue
			}
			if !registered[en.Route] {
				out = append(out, fmt.Sprintf(
					"node %d: proxy %v routed via %q, which names no registered transport",
					n.ID, en.TID, en.Route))
				continue
			}
			if en.Route == gm.PTName && (c.gmDead[en.Node] || c.gmDead[n.ID]) {
				out = append(out, fmt.Sprintf(
					"node %d: proxy %v still routed over the killed GM fabric to node %d",
					n.ID, en.TID, en.Node))
				continue
			}
			if strings.HasPrefix(en.Class, "@peer") {
				continue
			}
			if cur, ok := n.Exec.Route(en.Node); ok && cur != en.Route {
				out = append(out, fmt.Sprintf(
					"node %d: proxy %v routed via %q, but the executive routes node %d via %q",
					n.ID, en.TID, en.Route, en.Node, cur))
			}
		}
	}
	return out
}

// healthChecker verifies the liveness state machines converge: every
// monitored peer must settle back to Up (a killed data plane fails over,
// it does not take the peer down).
type healthChecker struct{}

func (healthChecker) Name() string { return "health-consensus" }

func (healthChecker) Check(c *Cluster) []string {
	var out []string
	for _, n := range c.Nodes {
		if n.Mon == nil {
			continue
		}
		for _, p := range c.Nodes {
			if p == n {
				continue
			}
			if !waitTrue(2*time.Second, func() bool { return n.Mon.State(p.ID) == health.Up }) {
				out = append(out, fmt.Sprintf(
					"node %d never saw node %d come back up (state %v)",
					n.ID, p.ID, n.Mon.State(p.ID)))
			}
		}
	}
	return out
}

// membershipChecker verifies the bootstrap-protocol membership agrees
// with health at every quiescent point: a peer the local monitor sees Up
// (or is not monitoring) must be in the member set, a peer it sees Down
// must not be.  The coupling is eventually consistent — eviction and
// re-admission ride the health transitions — so the checker waits
// (bounded) for each pair to converge.
type membershipChecker struct{}

func (membershipChecker) Name() string { return "membership-consensus" }

func (membershipChecker) Check(c *Cluster) []string {
	var out []string
	for _, n := range c.Nodes {
		if n.MS == nil {
			continue
		}
		for _, p := range c.Nodes {
			if p == n {
				continue
			}
			agreed := waitTrue(2*time.Second, func() bool {
				_, member := n.MS.Lookup(p.ID)
				if n.Mon == nil {
					return member
				}
				return member == (n.Mon.State(p.ID) != health.Down)
			})
			if !agreed {
				_, member := n.MS.Lookup(p.ID)
				state := "unmonitored"
				if n.Mon != nil {
					state = n.Mon.State(p.ID).String()
				}
				out = append(out, fmt.Sprintf(
					"node %d: membership disagrees with health for node %d: member=%v, health=%s",
					n.ID, p.ID, member, state))
			}
		}
	}
	return out
}

// ebChecker re-audits the event-builder workload's cumulative totals at
// every quiescent point: the per-round logs must have added up to exactly
// one completion per budgeted event (eventBuilderRound records the
// per-event violations; this checker catches cross-round accounting
// drift), and the event manager's duplicate counter — which fires on a
// built note for an event it did not hand out or already saw completed —
// must still read zero.  Killing a builder and rebalancing its range is
// exactly the scenario this invariant exists for.
type ebChecker struct{}

func (ebChecker) Name() string { return "eventbuilder-exactly-once" }

func (ebChecker) Check(c *Cluster) []string {
	eb := c.eb
	if eb == nil {
		return nil
	}
	var out []string
	if dup := eb.evm.Duplicates(); dup != 0 {
		out = append(out, fmt.Sprintf("event manager counted %d duplicate built notes", dup))
	}
	eb.mu.Lock()
	expected, built, kills := eb.totalExpected, eb.totalBuilt, eb.killRounds
	eb.mu.Unlock()
	if built != expected {
		out = append(out, fmt.Sprintf(
			"%d distinct events completed across all rounds, budget was %d (%d kill rounds)",
			built, expected, kills))
	}
	return out
}

// storageChecker audits the striped store at every quiescent point: the
// on-disk segment set, read back through the same recovery path a
// restart would use, must hold exactly the records replayed so far —
// every event once, on its stripe, payload intact — including across
// rounds that crashed a writer mid-replay and recovered it.
type storageChecker struct{}

func (storageChecker) Name() string { return "storage-exactly-once" }

func (storageChecker) Check(c *Cluster) []string {
	sw := c.sw
	if sw == nil {
		return nil
	}
	var out []string
	for i, s := range sw.sws {
		w := s.Writer()
		if w == nil {
			out = append(out, fmt.Sprintf("stripe %d has no writer attached", i))
			continue
		}
		// Push the arena tail to disk so the read-back sees everything
		// the replayer was acked for.
		if err := w.Flush(); err != nil {
			out = append(out, fmt.Sprintf("stripe %d flush: %v", i, err))
		}
	}
	if out != nil {
		return out
	}
	recs, err := storage.LoadSet(sw.dir)
	if err != nil {
		return append(out, fmt.Sprintf("segment read-back: %v", err))
	}
	sw.mu.Lock()
	expected, kills := sw.expected, sw.killRounds
	sw.mu.Unlock()
	if len(recs) != len(expected) {
		out = append(out, fmt.Sprintf(
			"store holds %d records, %d were replayed (%d kill rounds): lost or duplicated events",
			len(recs), len(expected), kills))
	}
	for i := 0; i < len(recs) && i < len(expected); i++ {
		if recs[i].Event != expected[i].Event {
			out = append(out, fmt.Sprintf("record %d: event %d on disk, expected %d",
				i, recs[i].Event, expected[i].Event))
			break // one desync makes the rest noise
		}
		if !bytes.Equal(recs[i].Data, expected[i].Data) {
			out = append(out, fmt.Sprintf("event %d: payload corrupt on disk", recs[i].Event))
		}
	}
	return out
}

// workloadChecker is the harness's own sanity: a storm that moved no
// frames validates nothing, so silence here would be a false green.
type workloadChecker struct{}

func (workloadChecker) Name() string { return "workload-liveness" }

func (workloadChecker) Check(c *Cluster) []string {
	var echo, sent, recvd uint64
	for _, n := range c.Nodes {
		echo += n.echoOK.Load()
		sent += n.seqSent.Load()
		n.recvMu.Lock()
		for _, seqs := range n.recv {
			recvd += uint64(len(seqs))
		}
		n.recvMu.Unlock()
	}
	var out []string
	if echo == 0 {
		out = append(out, "no echo round trip ever completed")
	}
	if sent == 0 {
		out = append(out, "no sequence frame was ever sent")
	}
	if recvd == 0 {
		out = append(out, "no sequence frame was ever received")
	}
	return out
}

// i2o16 narrows a stored 16-bit node id back to i2o.NodeID.
func i2o16(v uint32) i2o.NodeID { return i2o.NodeID(v & 0xFFFF) }
