package xdaq

// Multi-process deployment: the public face of the cluster bootstrap
// protocol (internal/cluster) and the transports that carry it.  A
// process calls Join with a listen address and (unless it is the seed) a
// rendezvous address; one ExecJoin round trip later it holds a Cluster
// handle whose membership converges across every process.  Colocated
// processes that share a ShmDir exchange frames over mmap'd rings
// (internal/transport/shm) with their TCP routes as the health-monitored
// fallback.  See doc/deployment.md for the process model and protocol.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"xdaq/internal/cluster"
	"xdaq/internal/pta"
	"xdaq/internal/transport/shm"
	"xdaq/internal/transport/tcp"
)

// Member is one cluster member's record: identity, listen address,
// shared-memory directory and exported device table.
type Member = cluster.Member

// DeviceExport is one row of a member's exported device table.
type DeviceExport = cluster.DeviceExport

// Listener is a node's TCP peer-transport endpoint: the public wrapper
// around the internal transport, so deployments never name internal
// types.  It listens for peers, dials them on demand, and identifies
// unknown peers by address (the cluster rendezvous handshake).
type Listener struct {
	n  *Node
	tr *tcp.Transport
}

// Listen attaches a TCP peer transport listening on addr ("host:port";
// port 0 picks an ephemeral port) and returns its Listener.  The
// transport runs with the package defaults: the eager/rendezvous switch
// point auto-tunes and each accepted peer is granted the default credit
// window.
func (n *Node) Listen(addr string) (*Listener, error) {
	tr, err := tcp.New(n.Exec.Node(), n.Exec.Allocator(), tcp.Config{
		Listen:  addr,
		Metrics: n.Exec.Metrics(),
	})
	if err != nil {
		return nil, err
	}
	if err := n.Agent.Register(tr, pta.Task); err != nil {
		tr.Stop()
		return nil, err
	}
	return &Listener{n: n, tr: tr}, nil
}

// Addr returns the bound listen address.
func (l *Listener) Addr() string { return l.tr.Addr() }

// Route returns the route name frames are forwarded under ("pt.tcp").
func (l *Listener) Route() string { return l.tr.Name() }

// AddPeer maps a remote node to its address and routes frames for it
// over this listener's transport.
func (l *Listener) AddPeer(node NodeID, addr string) {
	l.tr.AddPeer(node, addr)
	l.n.Exec.SetRoute(node, l.tr.Name())
}

// Identify dials addr, learns which node answers, adopts the connection
// and routes that node over this listener.  It is AddPeer for a peer
// whose identity is not known in advance — the seed rendezvous.
func (l *Listener) Identify(ctx context.Context, addr string) (NodeID, error) {
	node, err := l.tr.Identify(ctx, addr)
	if err != nil {
		return 0, timeoutErr(ctx, err)
	}
	l.n.Exec.SetRoute(node, l.tr.Name())
	return node, nil
}

// ClusterConfig configures one Join call.
type ClusterConfig struct {
	// Node configures the local executive (identity, allocator,
	// dispatchers...).  Node.Node must be unique in the cluster.
	Node NodeOptions

	// Listen is the TCP listen address; defaults to "127.0.0.1:0".
	// Other members reach this process here, so cross-host deployments
	// must use a routable address.
	Listen string

	// Seed is any live member's listen address.  Empty means this
	// process starts the cluster (it is the seed others name).  After
	// bootstrap all members are equal — any of them can admit joiners —
	// so a restarted process may seed off any live member.
	Seed string

	// ShmDir, when set, attaches a shared-memory transport rooted at
	// this directory.  Members reporting the same ShmDir are colocated:
	// frames to them ride mmap'd rings with the TCP route as health
	// fallback.  Use one fresh directory per cluster incarnation.
	ShmDir string

	// Health tunes the peer liveness monitor Join starts; nil selects
	// the defaults (1s probes, threshold 3).  The monitor is what turns
	// a crashed member into a membership eviction.
	Health *HealthOptions

	// NoHealth disables the liveness monitor, and with it
	// eviction-on-down.
	NoHealth bool

	// Timeout bounds the bootstrap (identify + join round trip) when
	// the caller's context has no deadline; defaults to 5s.
	Timeout time.Duration

	// Logf sinks cluster diagnostics; defaults to NodeOptions.Logf.
	Logf func(format string, args ...any)
}

// Cluster is a process's handle on a running multi-process cluster.
type Cluster struct {
	node *Node
	ln   *Listener
	ms   *cluster.Membership

	mu     sync.Mutex
	shm    *shm.Transport
	shmDir string
	mon    *HealthMonitor
}

// Join builds a node, starts its listener (and shm transport, when
// configured), and enters the cluster through cfg.Seed — or starts a new
// cluster when Seed is empty.  The context bounds the bootstrap; expiry
// surfaces as ErrTimeout.
//
//	cl, err := xdaq.Join(ctx, xdaq.ClusterConfig{
//	    Node:   xdaq.NodeOptions{Name: "ru1", Node: 2},
//	    Listen: "10.0.0.2:9002",
//	    Seed:   "10.0.0.1:9001",
//	})
//
// The join exchange carries each side's exported device table (the TiD
// exchange), re-snapshotted every time a record is shared — so a device
// plugged on any member before a peer joins appears behind a proxy on
// that peer with no Discover round trip.  Devices plugged after the
// last join are reachable through Discover as usual.
func Join(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = cfg.Node.Logf
	}
	node, err := NewNode(cfg.Node)
	if err != nil {
		return nil, err
	}
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := node.Listen(listen)
	if err != nil {
		node.Close()
		return nil, fmt.Errorf("xdaq: join: %w", err)
	}
	c := &Cluster{node: node, ln: ln, shmDir: cfg.ShmDir}
	if cfg.ShmDir != "" {
		tr, err := shm.New(node.Exec.Node(), node.Exec.Allocator(), shm.Config{
			Dir:     cfg.ShmDir,
			Metrics: node.Exec.Metrics(),
		})
		if err != nil {
			node.Close()
			return nil, fmt.Errorf("xdaq: join: %w", err)
		}
		if err := node.Agent.Register(tr, pta.Task); err != nil {
			tr.Stop()
			node.Close()
			return nil, fmt.Errorf("xdaq: join: %w", err)
		}
		c.shm = tr
	}

	ms, err := cluster.NewMembership(cluster.MembershipConfig{
		Exec: node.Exec,
		Self: Member{
			Node: node.Exec.Node(),
			Name: cfg.Node.Name,
			Addr: ln.Addr(),
			Shm:  cfg.ShmDir,
		},
		Wire:           c.wire,
		RequestTimeout: cfg.Timeout,
		Logf:           cfg.Logf,
	})
	if err != nil {
		node.Close()
		return nil, err
	}
	c.ms = ms

	if cfg.Seed != "" {
		bctx := ctx
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			bctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
		}
		// Retry the whole rendezvous until the bootstrap deadline:
		// cluster processes start near-simultaneously, so the seed's
		// listener may come up a beat after ours and the first dial
		// lands on connection-refused.
		for {
			var seedNode NodeID
			seedNode, err = ln.Identify(bctx, cfg.Seed)
			if err == nil {
				err = ms.Join(bctx, seedNode)
			}
			if err == nil {
				break
			}
			select {
			case <-bctx.Done():
				c.teardown()
				return nil, fmt.Errorf("xdaq: join: seed %s: %w", cfg.Seed, timeoutErr(bctx, err))
			case <-time.After(100 * time.Millisecond):
			}
		}
	}

	if !cfg.NoHealth {
		opts := HealthOptions{}
		if cfg.Health != nil {
			opts = *cfg.Health
		}
		if opts.Logf == nil {
			opts.Logf = cfg.Logf
		}
		prev := opts.OnState
		opts.OnState = func(peer NodeID, state PeerState) {
			switch state {
			case PeerDown:
				ms.Evict(peer)
			case PeerUp:
				ms.Revive(peer)
			}
			if prev != nil {
				prev(peer, state)
			}
		}
		// Every already-wired colocated peer falls back to TCP.
		if opts.Fallback == nil {
			opts.Fallback = make(map[NodeID]string)
		}
		c.mu.Lock()
		if c.shm != nil {
			for _, m := range ms.Members() {
				if m.Node != node.Exec.Node() && m.Shm == c.shmDir {
					opts.Fallback[m.Node] = ln.Route()
				}
			}
		}
		mon := node.StartHealth(opts)
		c.mon = mon
		c.mu.Unlock()
	}
	return c, nil
}

// wire is the membership's fabric hook: connect a learned member and
// return its route.
func (c *Cluster) wire(m Member) (string, error) {
	if m.Addr != "" {
		c.ln.tr.AddPeer(m.Node, m.Addr)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shm != nil && m.Shm != "" && m.Shm == c.shmDir {
		if err := c.shm.AddPeer(m.Node); err != nil {
			return "", err
		}
		if c.mon != nil {
			c.mon.SetFallback(m.Node, c.ln.Route())
		}
		return c.shm.Name(), nil
	}
	if m.Addr == "" {
		return "", fmt.Errorf("xdaq: member %v has no address and no shared shm dir", m.Node)
	}
	return c.ln.Route(), nil
}

// Node returns the underlying node (plug devices, make calls).
func (c *Cluster) Node() *Node { return c.node }

// Listener returns the cluster's TCP endpoint (its Addr is what other
// processes pass as Seed).
func (c *Cluster) Listener() *Listener { return c.ln }

// Members returns the current membership, sorted by node id.
func (c *Cluster) Members() []Member { return c.ms.Members() }

// Epoch returns the local membership epoch.
func (c *Cluster) Epoch() uint64 { return c.ms.Epoch() }

// WaitReady blocks until at least n members are known (including this
// process).  Deadline expiry surfaces as ErrTimeout.
func (c *Cluster) WaitReady(ctx context.Context, n int) error {
	if err := c.ms.WaitReady(ctx, n); err != nil {
		return timeoutErr(ctx, err)
	}
	return nil
}

// Leave announces a graceful departure to every member.  The node stays
// usable (and may Join again); call Close to shut it down.
func (c *Cluster) Leave(ctx context.Context) error {
	return c.ms.Leave(ctx)
}

// Close tears the handle down: membership hooks first, then the node
// (health monitor, transports, executive).  It does not announce a
// leave — call Leave first for a graceful departure; a silent Close is
// indistinguishable from a crash and costs the others a health
// detection period.
func (c *Cluster) Close() {
	c.teardown()
}

func (c *Cluster) teardown() {
	c.ms.Close()
	c.node.Close()
}

// timeoutErr folds context expiry into the package's sentinel set: a
// deadline that ran out becomes ErrTimeout (wrapped, so errors.Is sees
// both).
func timeoutErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrTimeout) {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) || (ctx != nil && errors.Is(ctx.Err(), context.DeadlineExceeded)) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}
