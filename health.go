package xdaq

import (
	"time"

	"xdaq/internal/health"
)

// Re-exported health types.
type (
	// HealthMonitor probes a node's routed peers and drives failover;
	// see the health package for the state machine.
	HealthMonitor = health.Monitor

	// PeerStatus is one peer's externally visible health.
	PeerStatus = health.PeerStatus

	// PeerState classifies one peer's liveness.
	PeerState = health.State
)

// Peer liveness states.
const (
	PeerUp      = health.Up
	PeerSuspect = health.Suspect
	PeerDown    = health.Down
)

// HealthOptions tunes a node's peer health monitor.
type HealthOptions struct {
	// Interval is the probe period per peer; defaults to 1s.
	Interval time.Duration

	// Timeout bounds one probe round trip; defaults to Interval.
	Timeout time.Duration

	// Threshold is how many consecutive probe failures demote a peer to
	// down (or trigger a failover); defaults to 3.
	Threshold int

	// Fallback maps peers to a backup route name (e.g. "pt.tcp") tried
	// when the threshold is crossed, before the peer is declared down.
	// Peers learned later are added with HealthMonitor.SetFallback.
	Fallback map[NodeID]string

	// OnState, when set, is called after every peer state transition
	// (up↔suspect↔down), outside the monitor's lock.  Join uses it to
	// evict down peers from the membership and re-admit recovered ones.
	OnState func(node NodeID, state PeerState)

	// Logf sinks state-transition diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// StartHealth starts probing the node's routed peers.  Peers that stop
// answering are failed over to their Fallback route or declared down, at
// which point calls to them return ErrPeerDown within roughly
// Interval×Threshold instead of hanging until the request timeout.  The
// monitor also answers health queries from other nodes (xdaqctl health).
//
// The monitor is owned by the node: Close stops it.  Starting a second
// monitor stops the first.
func (n *Node) StartHealth(opts HealthOptions) *HealthMonitor {
	mon := health.New(n.Exec, health.Config{
		Interval:  opts.Interval,
		Timeout:   opts.Timeout,
		Threshold: opts.Threshold,
		Fallback:  opts.Fallback,
		OnState:   opts.OnState,
		Logf:      opts.Logf,
	})
	if old := n.health.Swap(mon); old != nil {
		old.Close()
	}
	return mon
}

// Health returns the node's running monitor, or nil before StartHealth.
func (n *Node) Health() *HealthMonitor { return n.health.Load() }
