package xdaq

// One benchmark per table/figure of the paper's evaluation, plus the
// ablations indexed in DESIGN.md.  The testing.B numbers are round-trip
// times (divide by two for the paper's one-way convention); the
// cmd/benchtab tool prints the same experiments in the paper's own table
// format with the published values alongside.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"xdaq/internal/benchlab"
	"xdaq/internal/chain"
	"xdaq/internal/daq"
	"xdaq/internal/executive"
	"xdaq/internal/i2o"
	"xdaq/internal/orb"
	"xdaq/internal/pool"
	"xdaq/internal/probe"
	"xdaq/internal/pta"
	"xdaq/internal/rmi"
	"xdaq/internal/sgl"
	"xdaq/internal/transport/gm"
	"xdaq/internal/transport/loopback"
)

// --- Figure 6: blackbox ping-pong latency, XDAQ over GM vs GM direct ---

func BenchmarkFig6XDAQOverGM(b *testing.B) {
	rig, err := benchlab.NewGMRig(benchlab.RigConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	for _, size := range []int{1, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := rig.RoundTrip(rig.Echo, size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig6GMDirect(b *testing.B) {
	direct, err := benchlab.NewGMDirect()
	if err != nil {
		b.Fatal(err)
	}
	defer direct.Close()
	for _, size := range []int{1, 256, 1024, 4096} {
		payload := make([]byte, size)
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := direct.RoundTrip(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 1: whitebox dispatch path with probes enabled ---

func BenchmarkTable1ProbedDispatch(b *testing.B) {
	reg := &probe.Registry{}
	rig, err := benchlab.NewGMRig(benchlab.RigConfig{Probes: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	probe.Enable(true)
	defer probe.Enable(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rig.RoundTrip(rig.Echo, 64); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, p := range reg.Points() {
		s := p.Stats()
		if s.Count > 0 {
			b.ReportMetric(float64(s.Median)/1e3, p.Name()+"-median-µs")
		}
	}
}

// --- §5 allocator ablation: original fixed pool vs optimized table pool ---

func BenchmarkAllocAblation(b *testing.B) {
	for _, alloc := range []string{"fixed", "table"} {
		b.Run(alloc, func(b *testing.B) {
			rig, err := benchlab.NewGMRig(benchlab.RigConfig{Allocator: alloc})
			if err != nil {
				b.Fatal(err)
			}
			defer rig.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rig.RoundTrip(rig.Echo, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Raw allocator microbenchmarks backing the ablation.
func BenchmarkPoolAlloc(b *testing.B) {
	allocs := map[string]pool.Allocator{
		"fixed": pool.MustFixed(pool.DefaultFixedClasses()),
		"table": pool.NewTable(0),
	}
	for _, name := range []string{"fixed", "table"} {
		a := allocs[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf, err := a.Alloc(1024)
				if err != nil {
					b.Fatal(err)
				}
				buf.Release()
			}
		})
	}
}

// --- §6.2: the CORBA-like ORB baseline over the same fabric ---

func BenchmarkORBBaseline(b *testing.B) {
	fabric := gm.NewFabric()
	na, err := fabric.Open(1)
	if err != nil {
		b.Fatal(err)
	}
	nb, err := fabric.Open(2)
	if err != nil {
		b.Fatal(err)
	}
	wa, err := orb.NewGMWire(na, 2, 32)
	if err != nil {
		b.Fatal(err)
	}
	wb, err := orb.NewGMWire(nb, 1, 32)
	if err != nil {
		b.Fatal(err)
	}
	client := orb.NewEndpoint(wa)
	server := orb.NewEndpoint(wb)
	defer client.Close()
	defer server.Close()
	servant := orb.NewServant()
	servant.Register("echo", func(args []any) ([]any, error) { return args, nil })
	server.Bind("bench", servant)
	ref := client.Object("bench")
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Invoke("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// The RMI adapters on top of XDAQ, for comparison with the ORB.
func BenchmarkRMIInvoke(b *testing.B) {
	rig, err := benchlab.NewGMRig(benchlab.RigConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	stub := rmi.NewStub(rig.A, rig.Echo)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := stub.Invoke(benchlab.EchoXFunc,
			func(e *rmi.Encoder) { e.Bytes32(payload) },
			nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4 ablation: polling vs task mode peer transports ---

func BenchmarkPollingVsTask(b *testing.B) {
	cases := []struct {
		name string
		mode pta.Mode
		slow bool
	}{
		{"task", pta.Task, false},
		{"polling", pta.Polling, false},
		{"polling-with-slow-pt", pta.Polling, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rig, err := benchlab.NewGMRig(benchlab.RigConfig{Mode: c.mode})
			if err != nil {
				b.Fatal(err)
			}
			defer rig.Close()
			if c.slow {
				if err := rig.AgentA.Register(benchlab.NewSlowPT("pt.slow", 100*time.Microsecond), pta.Polling); err != nil {
					b.Fatal(err)
				}
				if err := rig.AgentB.Register(benchlab.NewSlowPT("pt.slow", 100*time.Microsecond), pta.Polling); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rig.RoundTrip(rig.Echo, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §4 ablation: multiple transports in parallel ---

func BenchmarkParallelTransports(b *testing.B) {
	for _, transports := range []int{1, 2} {
		b.Run(fmt.Sprintf("transports=%d", transports), func(b *testing.B) {
			// 128 KB payloads keep one modelled link fully serialized, so
			// the second transport pays off.
			res, err := benchlab.RunParallelTransportsN(time.Second, 131072, 4, transports)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res, "roundtrips/s")
		})
	}
}

// --- §3.2 ablation: seven-level priority scheduling under load ---

func BenchmarkPriorityDispatch(b *testing.B) {
	rig, err := benchlab.NewPriorityRig()
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	const backlog = 512
	for _, prio := range []Priority{PriorityUrgent, PriorityBulk} {
		b.Run(fmt.Sprintf("priority=%d", prio), func(b *testing.B) {
			// Each iteration gates a probe behind a 512-frame bulk
			// backlog; ns/op is the gate-open-to-reply latency plus the
			// (identical) setup cost of seeding the backlog.
			for i := 0; i < b.N; i++ {
				if _, err := rig.Probe(prio, backlog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §4 ablation: scatter-gather lists vs flat copies ---

func BenchmarkSGL(b *testing.B) {
	p := pool.NewTable(0)
	const total = 4 << 20 // 4 MB payload, 16 chained 256 KB blocks
	src := make([]byte, total)
	b.Run("sgl-chain", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			l, err := sgl.FromBytes(p, src, pool.MaxBlock)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			if err := l.Walk(func(seg []byte) error { n += len(seg); return nil }); err != nil {
				b.Fatal(err)
			}
			if n != total {
				b.Fatalf("walked %d", n)
			}
			l.Release()
		}
	})
	b.Run("flat-copy", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			// The flat alternative: one oversized allocation per message
			// (the pool cannot serve it; this is exactly why SGLs exist).
			dst := make([]byte, total)
			copy(dst, src)
		}
	})
}

// --- Design ablation: the §4 watchdog (asynchronous handler termination)
// trades one goroutine hop per dispatch for protection against
// monopolizing handlers; this measures that price on a local echo ---

func BenchmarkWatchdogOverhead(b *testing.B) {
	for _, wd := range []time.Duration{0, 100 * time.Millisecond} {
		name := "disabled"
		if wd > 0 {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			e := executive.New(executive.Options{
				Name: "wd", Node: 1, Watchdog: wd,
				Logf: func(string, ...any) {},
			})
			defer e.Close()
			echo := NewDevice("echo", 0)
			echo.Bind(1, func(ctx *Context, m *Message) error {
				return ReplyIfExpected(ctx, m, nil)
			})
			id, err := e.Plug(echo)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := e.Request(&Message{
					Target: id, Initiator: TIDExecutive,
					Function: i2o.FuncPrivate, Org: i2o.OrgXDAQ, XFunction: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep.Release()
			}
		})
	}
}

// --- §4 chained transfers: multi-megabyte payloads over 256 KB frames ---

func BenchmarkChainTransfer(b *testing.B) {
	e := executive.New(executive.Options{Name: "chain", Node: 1, Logf: func(string, ...any) {}})
	defer e.Close()
	done := make(chan struct{}, 1)
	reasm := chain.NewReassembler(e.Allocator(), func(t *chain.Transfer) error {
		t.Data.Release()
		done <- struct{}{}
		return nil
	})
	sink := NewDevice("sink", 0)
	sink.Bind(9, reasm.Handler)
	id, err := e.Plug(sink)
	if err != nil {
		b.Fatal(err)
	}
	const total = 2 << 20 // 2 MB per transfer
	data := make([]byte, total)
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chain.SendBytes(e, id, TIDExecutive, 9, PriorityBulk, uint32(i), data); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// --- §7 "ongoing work": communication with and without hardware FIFO
// support — the same echo over the pointer-passing PCI message units, the
// zero-copy loopback, and the serializing GM fabric ---

func BenchmarkTransportComparison(b *testing.B) {
	runEcho := func(b *testing.B, connect func(a, bb *Node) error) {
		a, err := NewNode(NodeOptions{Name: "a", Node: 1, Logf: func(string, ...any) {}})
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		n2, err := NewNode(NodeOptions{Name: "b", Node: 2, Logf: func(string, ...any) {}})
		if err != nil {
			b.Fatal(err)
		}
		defer n2.Close()
		if err := connect(a, n2); err != nil {
			b.Fatal(err)
		}
		echo := NewDevice("echo", 0)
		echo.Bind(1, func(ctx *Context, m *Message) error {
			return ReplyIfExpected(ctx, m, m.Payload)
		})
		if _, err := n2.Plug(echo); err != nil {
			b.Fatal(err)
		}
		target, err := a.Discover(2, "echo", 0)
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Call(target, 1, payload); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pci-hardware-fifos", func(b *testing.B) {
		runEcho(b, func(a, bb *Node) error { return Connect(PCI(0), Nodes(a, bb)) })
	})
	b.Run("loopback", func(b *testing.B) {
		runEcho(b, func(a, bb *Node) error { return Connect(Loopback(), Nodes(a, bb)) })
	})
	b.Run("gm-fabric", func(b *testing.B) {
		runEcho(b, func(a, bb *Node) error { return Connect(GM(), Nodes(a, bb)) })
	})
}

// --- Extension: event builder throughput (the paper's motivating DAQ) ---

// The flat topology is the legacy wiring: one builder asking every
// readout unit directly, one event per allocation.  The tree topology is
// the PR's hierarchical path: events granted in blocks of ebRangeSize,
// fragments pulled through aggregators with a bounded fan-in — per event
// it moves roughly (1+rus/fanin)/rangeSize + rus/rangeSize frames instead
// of flat's 1+rus, which is what lets the builder keep up as the readout
// count grows toward the paper's "hundreds of RUs".
const (
	ebFragSize  = 512
	ebFanin     = 16 // aggregator children per stage
	ebRangeSize = 8  // events per block on the hierarchical path
	ebRUsatNode = 8  // readout units packed per node
)

// ebRig is one event-builder deployment: EVM on node 1, readout units
// packed ebRUsatNode per node, the builder alone on the last node, and —
// on the tree topology — one aggregator per ebFanin readout units,
// placed on its first child's node.
type ebRig struct {
	bu    *daq.BU
	close func()
}

func newEBRig(b *testing.B, topo string, nRU int, events uint64) *ebRig {
	b.Helper()
	fabric := loopback.NewFabric()
	ruNodes := (nRU + ebRUsatNode - 1) / ebRUsatNode
	total := 2 + ruNodes // EVM + RU nodes + BU
	execs := make([]*executive.Executive, total)
	agents := make([]*pta.Agent, total)
	for i := range execs {
		id := i2o.NodeID(i + 1)
		e := executive.New(executive.Options{
			Name: "eb", Node: id,
			RequestTimeout: 10 * time.Second,
			Logf:           func(string, ...any) {},
		})
		agent, err := pta.New(e)
		if err != nil {
			b.Fatal(err)
		}
		ep, err := fabric.Attach(id)
		if err != nil {
			b.Fatal(err)
		}
		if err := agent.Register(ep, pta.Task); err != nil {
			b.Fatal(err)
		}
		execs[i], agents[i] = e, agent
	}
	for _, e := range execs {
		for _, peer := range execs {
			if e != peer {
				e.SetRoute(peer.Node(), loopback.DefaultName)
			}
		}
	}
	rig := &ebRig{close: func() {
		for i := range execs {
			agents[i].Close()
			execs[i].Close()
		}
	}}

	evm := daq.NewEVM(events)
	if topo == "tree" {
		evm.SetSharding(8, ebRangeSize)
	}
	if _, err := execs[0].Plug(evm.Device()); err != nil {
		b.Fatal(err)
	}
	ruExec := func(i int) *executive.Executive { return execs[1+i/ebRUsatNode] }
	rus := make([]*daq.RU, nRU)
	for i := 0; i < nRU; i++ {
		ru := daq.NewRU(i, ebFragSize)
		e := ruExec(i)
		evmTID, err := e.Discover(1, daq.EVMClass, 0)
		if err != nil {
			b.Fatal(err)
		}
		ru.SetEVM(evmTID)
		if _, err := e.Plug(ru.Device()); err != nil {
			b.Fatal(err)
		}
		rus[i] = ru
	}

	rig.bu = daq.NewBU(0)
	buExec := execs[total-1]
	if _, err := buExec.Plug(rig.bu.Device()); err != nil {
		b.Fatal(err)
	}
	evmFromBU, err := buExec.Discover(1, daq.EVMClass, 0)
	if err != nil {
		b.Fatal(err)
	}

	if topo == "flat" {
		ruTIDs := make([]i2o.TID, nRU)
		for i := range ruTIDs {
			if ruTIDs[i], err = buExec.Discover(ruExec(i).Node(), daq.RUClass, i); err != nil {
				b.Fatal(err)
			}
		}
		rig.bu.Configure(evmFromBU, ruTIDs)
		return rig
	}

	// Tree: one aggregator per ebFanin readout units, hosted on its first
	// child's node; the builder pulls super-fragments from the roots.
	nAgg := (nRU + ebFanin - 1) / ebFanin
	roots := make([]i2o.TID, nAgg)
	for a := 0; a < nAgg; a++ {
		first := a * ebFanin
		e := ruExec(first)
		agg := daq.NewAggregator(a)
		var children []daq.AggChild
		for i := first; i < first+ebFanin && i < nRU; i++ {
			tid := rus[i].Device().TID()
			if ruExec(i) != e {
				if tid, err = e.Discover(ruExec(i).Node(), daq.RUClass, i); err != nil {
					b.Fatal(err)
				}
			}
			children = append(children, daq.AggChild{TID: tid})
		}
		evmTID, err := e.Discover(1, daq.EVMClass, 0)
		if err != nil {
			b.Fatal(err)
		}
		agg.Configure(evmTID, children)
		if _, err := e.Plug(agg.Device()); err != nil {
			b.Fatal(err)
		}
		if roots[a], err = buExec.Discover(e.Node(), daq.AggClass, a); err != nil {
			b.Fatal(err)
		}
	}
	rig.bu.ConfigureTree(evmFromBU, roots, nRU)
	return rig
}

func BenchmarkEventBuilder(b *testing.B) {
	for _, topo := range []string{"flat", "tree"} {
		for _, nRU := range []int{4, 16, 64, 256} {
			b.Run(fmt.Sprintf("topo=%s/rus=%d", topo, nRU), func(b *testing.B) {
				rig := newEBRig(b, topo, nRU, uint64(b.N))
				defer rig.close()
				b.ResetTimer()
				if _, err := rig.bu.Start(0, 8); err != nil {
					b.Fatal(err)
				}
				stats, err := rig.bu.Wait()
				if err != nil {
					b.Fatal(err)
				}
				if stats.Built != uint64(b.N) {
					b.Fatalf("built %d of %d", stats.Built, b.N)
				}
				if stats.Corrupt != 0 {
					b.Fatalf("%d corrupt fragments", stats.Corrupt)
				}
				b.SetBytes(int64(nRU) * ebFragSize)
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// --- Multicore dispatch engine: hot-path allocations and worker scaling ---

// BenchmarkDispatchHotPath measures the steady-state local request/reply
// path: pooled frame descriptors, recycled pending-reply slots and the
// zero-copy echo below should leave it allocation-free per round trip.
func BenchmarkDispatchHotPath(b *testing.B) {
	e := executive.New(executive.Options{
		Name: "hot", Node: 1,
		RequestTimeout: 10 * time.Second,
		Logf:           func(string, ...any) {},
	})
	defer e.Close()
	d := NewDevice("echo", 0)
	d.Bind(1, func(ctx *Context, m *Message) error {
		if !m.Flags.Has(i2o.FlagReplyExpected) {
			return nil
		}
		// Zero-copy echo: the reply aliases the request's pool block and
		// takes its own reference, so the block survives the request
		// frame's recycling at end of dispatch.
		rep := i2o.NewReply(m)
		m.Retain()
		rep.AttachBuffer(m.Buffer())
		rep.Payload = m.Payload
		return ctx.Host.Send(rep)
	})
	id, err := e.Plug(d)
	if err != nil {
		b.Fatal(err)
	}
	const size = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := e.AllocMessage(size)
		if err != nil {
			b.Fatal(err)
		}
		m.Target = id
		m.Initiator = i2o.TIDExecutive
		m.XFunction = 1
		rep, err := e.Request(m)
		if err != nil {
			b.Fatal(err)
		}
		rep.Recycle()
	}
}

// benchSink defeats dead-code elimination of the CPU-bound handler body.
var benchSink atomic.Uint64

// BenchmarkMultiDeviceDispatch drives eight devices with small CPU-bound
// handlers from concurrent initiators, once with the paper's single loop
// of control and once with four parallel dispatch workers.  On a
// multi-core host the parallel engine should multiply roundtrips/s; on a
// single core the numbers show the engine's overhead instead.
func BenchmarkMultiDeviceDispatch(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("dispatchers=%d", workers), func(b *testing.B) {
			e := executive.New(executive.Options{
				Name: "multi", Node: 1,
				RequestTimeout: 30 * time.Second,
				Dispatchers:    workers,
				Logf:           func(string, ...any) {},
			})
			defer e.Close()
			const devices = 8
			ids := make([]i2o.TID, devices)
			for i := range ids {
				d := NewDevice("work", i)
				d.Bind(1, func(ctx *Context, m *Message) error {
					var sum uint64
					for j := uint64(0); j < 2000; j++ {
						sum += j * j
					}
					benchSink.Store(sum)
					return ReplyIfExpected(ctx, m, nil)
				})
				id, err := e.Plug(d)
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = id
			}
			var next atomic.Uint64
			b.SetParallelism(devices) // initiators even on a small GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1) % devices
					rep, err := e.Request(&i2o.Message{
						Priority: i2o.PriorityNormal, Target: ids[i],
						Initiator: i2o.TIDExecutive, Function: i2o.FuncPrivate,
						Org: i2o.OrgXDAQ, XFunction: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					rep.Recycle()
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "roundtrips/s")
		})
	}
}
