module xdaq

go 1.22
