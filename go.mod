module xdaq

go 1.23
